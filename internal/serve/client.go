package serve

// Client is the Go face of the crawld HTTP API — what examples, tests, and
// tooling use instead of hand-rolling requests. It is deliberately thin:
// every method is one endpoint, and session re-attach is just Create with
// the same spec.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client talks to a crawld daemon.
type Client struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:7090".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
}

// NewClient builds a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out; non-2xx
// responses come back as *Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reader = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reader)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &Error{Status: resp.StatusCode, Code: "internal"}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Message == "" {
			apiErr.Message = fmt.Sprintf("HTTP %d from %s %s", resp.StatusCode, method, path)
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create creates the session, or attaches to the existing one when the same
// (tenant, name) was created before — including by a previous daemon
// incarnation on the same store.
func (c *Client) Create(ctx context.Context, spec SessionSpec) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodPost, "/v1/sessions", spec, &st)
	return st, err
}

// Get fetches a session's status and results.
func (c *Client) Get(ctx context.Context, id string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Wait long-polls the session until its change sequence exceeds after (or
// the daemon's poll window elapses) and returns the then-current status.
func (c *Client) Wait(ctx context.Context, id string, after uint64, wait time.Duration) (SessionStatus, error) {
	var st SessionStatus
	path := fmt.Sprintf("/v1/sessions/%s?seq=%d&wait=%s", url.PathEscape(id), after, wait)
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// WaitDone long-polls until the session reaches a terminal state.
func (c *Client) WaitDone(ctx context.Context, id string) (SessionStatus, error) {
	var seen uint64
	for {
		st, err := c.Wait(ctx, id, seen, 10*time.Second)
		if err != nil {
			return st, err
		}
		if st.Done() {
			return st, nil
		}
		seen = st.Seq
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// Cancel cancels the session.
func (c *Client) Cancel(ctx context.Context, id string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, &st)
	return st, err
}

// List fetches session statuses, filtered by tenant when non-empty.
func (c *Client) List(ctx context.Context, tenant string) ([]SessionStatus, error) {
	path := "/v1/sessions"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var out []SessionStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Events streams the session's status changes, calling fn per update until
// the session is terminal, fn returns false, or ctx is done.
func (c *Client) Events(ctx context.Context, id string, fn func(SessionStatus) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/sessions/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &Error{Status: resp.StatusCode, Code: "internal", Message: "events stream refused"}
		json.NewDecoder(resp.Body).Decode(apiErr)
		return apiErr
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var st SessionStatus
		if err := dec.Decode(&st); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if !fn(st) || st.Done() {
			return nil
		}
	}
}

// Hosts fetches the daemon's per-host politeness accounting.
func (c *Client) Hosts(ctx context.Context) ([]HostStatus, error) {
	var out []HostStatus
	err := c.do(ctx, http.MethodGet, "/v1/hosts", nil, &out)
	return out, err
}

// Stats fetches the daemon snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}
