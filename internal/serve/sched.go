package serve

// Weighted-fair scheduling of crawl units over the shared worker pool, by
// stride scheduling: each tenant holds a pass value, every dispatch picks
// the tenant with the minimum pass and advances it by strideOne/weight, so
// over any busy interval tenants receive dispatches in proportion to their
// weights — one tenant's 500-unit fleet cannot starve another tenant's
// single crawl, it only slows it to its fair share. The scheduler hands out
// whole crawl units (one unit = one site or root crawl), which is the
// granularity the engine exposes; fairness is over dispatches, the same
// simplification BUbiNG-class crawlers make when visits are comparable.

import "sync"

// strideOne is the stride numerator: pass advances by strideOne/weight per
// dispatch, so weight w tenants are picked w times as often. Large enough
// that integer division keeps distinct weights distinct over the clamp
// range [1, 64].
const strideOne = 1 << 20

// clampWeight bounds fair-share weights to [1, 64]: zero (unset) means 1,
// and no tenant can buy unbounded priority.
func clampWeight(w int) int {
	if w < 1 {
		return 1
	}
	if w > 64 {
		return 64
	}
	return w
}

// unit is one schedulable crawl: unit index i of its session (sites first,
// then roots).
type unit struct {
	sess  *session
	index int
	label string
}

// tenantQueue is one tenant's pending units and stride state.
type tenantQueue struct {
	weight int
	pass   uint64
	queue  []*unit
}

// scheduler multiplexes tenants' units onto workers calling next.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantQueue
	// vtime is the global virtual time: the pass of the last dispatched
	// tenant. A tenant going from idle to busy joins at vtime rather than
	// its stale pass, so sleeping never banks credit (no burst after idle).
	vtime  uint64
	closed bool
}

func newScheduler() *scheduler {
	s := &scheduler{tenants: make(map[string]*tenantQueue)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue adds a session's units to its tenant's queue and wakes workers.
// The latest enqueue's weight wins for the whole tenant.
func (s *scheduler) enqueue(tenant string, weight int, units []*unit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	tq := s.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		s.tenants[tenant] = tq
	}
	tq.weight = clampWeight(weight)
	if len(tq.queue) == 0 && tq.pass < s.vtime {
		tq.pass = s.vtime
	}
	tq.queue = append(tq.queue, units...)
	s.cond.Broadcast()
}

// next blocks until a unit is runnable, returning ok=false once the
// scheduler is closed and drained of nothing (closed wins immediately —
// shutdown does not wait for the backlog).
func (s *scheduler) next() (*unit, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false
		}
		if u := s.pick(); u != nil {
			return u, true
		}
		s.cond.Wait()
	}
}

// pick dispatches the min-pass tenant's next unit, lazily discarding units
// of cancelled sessions. Caller holds s.mu.
func (s *scheduler) pick() *unit {
	for {
		var (
			best     *tenantQueue
			bestName string
		)
		for name, tq := range s.tenants {
			if len(tq.queue) == 0 {
				continue
			}
			// Ties break by name so dispatch order is deterministic even
			// though map iteration is not.
			if best == nil || tq.pass < best.pass || (tq.pass == best.pass && name < bestName) {
				best, bestName = tq, name
			}
		}
		if best == nil {
			return nil
		}
		u := best.queue[0]
		best.queue[0] = nil
		best.queue = best.queue[1:]
		s.vtime = best.pass
		best.pass += strideOne / uint64(best.weight)
		// A cancelled session's queued units are dead weight: charge
		// nothing further and keep looking.
		if u.sess != nil && u.sess.isCancelled() {
			continue
		}
		return u
	}
}

// queued returns the tenant's pending unit count (admission control).
func (s *scheduler) queued(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tq := s.tenants[tenant]; tq != nil {
		return len(tq.queue)
	}
	return 0
}

// queuedTotal returns the pending unit count over all tenants.
func (s *scheduler) queuedTotal() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, tq := range s.tenants {
		n += len(tq.queue)
	}
	return n
}

// close wakes every blocked worker to exit. Queued units are abandoned —
// the daemon's durable session records re-enqueue them on restart.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
