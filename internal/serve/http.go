package serve

// HTTP surface of the daemon. The Server owns no listener — cmd/crawld (or
// a test's httptest.Server) binds Handler() wherever it wants — and every
// endpoint speaks the JSON types in api.go:
//
//	POST   /v1/sessions              create or attach (idempotent by tenant+name)
//	GET    /v1/sessions[?tenant=t]   list sessions
//	GET    /v1/sessions/{id}         status; ?seq=N&wait=5s long-polls
//	GET    /v1/sessions/{id}/events  ndjson stream of status changes
//	DELETE /v1/sessions/{id}         cancel
//	GET    /v1/hosts                 politeness registry usage
//	GET    /v1/stats                 daemon snapshot

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// maxWait caps a long-poll so dead clients cannot pin handlers forever.
const maxWait = 60 * time.Second

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/hosts", s.handleHosts)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps an error onto the API envelope: typed *Error as-is,
// anything else as a 500.
func writeErr(w http.ResponseWriter, err error) {
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		apiErr = &Error{Status: http.StatusInternalServerError, Code: "internal", Message: err.Error()}
	}
	writeJSON(w, apiErr.Status, apiErr)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec SessionSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, errInvalid("bad session spec: %v", err))
		return
	}
	st, err := s.Create(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var (
		after uint64
		wait  time.Duration
	)
	if v := q.Get("seq"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, errInvalid("bad seq %q", v))
			return
		}
		after = n
	}
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeErr(w, errInvalid("bad wait %q", v))
			return
		}
		wait = min(d, maxWait)
	}
	st, err := s.Wait(r.Context(), r.PathValue("id"), after, wait)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the session as newline-delimited JSON: the current
// status immediately, then one line per change, ending after the terminal
// status or when the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(r.PathValue("id"))
	if sess == nil {
		writeErr(w, errNotFound(r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var seen uint64
	for {
		st := sess.wait(r.Context(), seen, maxWait)
		if st.Seq > seen || st.Done() {
			if enc.Encode(st) != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			seen = st.Seq
		}
		if st.Done() || r.Context().Err() != nil {
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHosts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Hosts())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
