// Package serve is the crawl-as-a-service daemon behind cmd/crawld: an
// always-on process exposing a session API (create / attach / stream
// progress / cancel / list) over local HTTP+JSON, multiplexing many
// concurrent crawl sessions onto one bounded worker pool.
//
// Three properties make it a service rather than a loop around the library:
//
//   - Multi-tenant fairness: every session belongs to a tenant and units
//     dispatch by stride scheduling over tenant weights, so one tenant's
//     500-site fleet cannot starve another tenant's single crawl.
//   - A process-wide politeness registry: every live crawl the daemon runs
//     routes per-host politeness through one sbcrawl.HostRegistry, so two
//     tenants hammering one host still observe the BUbiNG per-host spacing
//     invariant between each other — the daemon, not the tenant, owns
//     politeness.
//   - Durability: sessions and their crawls write through one persistent
//     store. Kill the daemon at any point, restart it on the same store,
//     and every interrupted session resumes by deterministic re-execution —
//     clients re-attach by POSTing the same spec and read final Results
//     byte-identical to an uninterrupted run. Resumed units dispatch
//     most-complete-first, so nearly-done work finishes soonest.
package serve

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"sbcrawl"
	"sbcrawl/internal/fleet"
)

// Config configures a daemon.
type Config struct {
	// StorePath is the durable store directory backing every session. The
	// daemon owns the single writer lock for its lifetime; opening a
	// directory another process holds fails with sbcrawl.ErrStoreLocked.
	StorePath string
	// Store is an already-open handle to use instead of StorePath.
	Store *sbcrawl.Store
	// Workers bounds concurrently running crawl units (0 → one per core).
	Workers int
	// Limits is the admission control; zero values mean unlimited.
	Limits Limits
	// PolitenessFloor, when set, is the registry-wide minimum politeness
	// delay: no tenant's live crawl may contact a host faster, whatever its
	// own Politeness says.
	PolitenessFloor time.Duration
}

// Limits bounds what any one tenant can ask of the daemon; exceeding one
// fails session creation with a limit_exceeded (HTTP 429) error.
type Limits struct {
	// TenantSessions caps a tenant's active (non-terminal) sessions.
	TenantSessions int
	// TenantQueue caps a tenant's queued units across its sessions.
	TenantQueue int
	// SessionUnits caps the units of one session.
	SessionUnits int
}

// sessionRecord is the durable form of a session: everything needed to
// rebuild and resume it after a daemon restart.
type sessionRecord struct {
	Spec      SessionSpec
	Cancelled bool
	Created   time.Time
}

// session is one live session: its spec, cancellation scope, and the
// mutable progress clients observe.
type session struct {
	id     string
	spec   SessionSpec
	labels []string
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	unitsDone int
	progress  []sbcrawl.CrawlProgress
	results   []*UnitResult
	seq       uint64
	change    chan struct{} // closed and replaced on every bump
}

// bump records an observable change: the sequence advances and every
// long-poller waiting on the old change channel wakes. Caller holds s.mu.
func (s *session) bump() {
	s.seq++
	close(s.change)
	s.change = make(chan struct{})
}

func (s *session) isCancelled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateCancelled
}

// setProgress records a running unit's checkpoint.
func (s *session) setProgress(i int, p sbcrawl.CrawlProgress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress[i] = p
	s.bump()
}

// finishUnit records a finished unit and, when it is the last, the
// session's terminal state. interrupted units (daemon shutdown or session
// cancel mid-crawl) are not final — their partial results are discarded
// here because the store will re-execute them byte-identically later.
func (s *session) finishUnit(i int, res *sbcrawl.Result, err error, interrupted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if interrupted {
		s.bump()
		return
	}
	ur := &UnitResult{Label: s.labels[i], Result: res}
	if err != nil {
		ur.Err = err.Error()
	}
	if res != nil {
		s.progress[i] = sbcrawl.CrawlProgress{Requests: res.Requests, Targets: len(res.Targets), Done: true}
	}
	s.results[i] = ur
	s.unitsDone++
	if s.unitsDone == len(s.labels) && s.state == StateRunning {
		s.state = StateDone
	}
	s.bump()
}

// status snapshots the session. Results are included only when asked (unit
// results can be large; listings skip them).
func (s *session) status(withResults bool) SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStatus{
		ID:        s.id,
		Tenant:    s.spec.Tenant,
		Name:      s.spec.Name,
		Weight:    clampWeight(s.spec.Weight),
		State:     s.state,
		Units:     len(s.labels),
		UnitsDone: s.unitsDone,
		Seq:       s.seq,
	}
	for _, p := range s.progress {
		st.Requests += p.Requests
		st.Targets += p.Targets
	}
	// Fault activity is known only for finished units (running crawls
	// report it with their final Result).
	for _, ur := range s.results {
		if ur == nil || ur.Result == nil || ur.Result.Faults == nil {
			continue
		}
		if st.Faults == nil {
			st.Faults = &sbcrawl.FaultStats{}
		}
		addFaults(st.Faults, ur.Result.Faults)
	}
	if withResults {
		st.Results = make([]UnitResult, len(s.results))
		for i, ur := range s.results {
			if ur != nil {
				st.Results[i] = *ur
			} else {
				st.Results[i] = UnitResult{Label: s.labels[i]}
			}
		}
	}
	return st
}

// addFaults accumulates one unit's fault counters into the session total.
func addFaults(dst, src *sbcrawl.FaultStats) {
	dst.Retries += src.Retries
	dst.RetrySuccesses += src.RetrySuccesses
	dst.Exhausted += src.Exhausted
	dst.BackoffWait += src.BackoffWait
	dst.BreakerTrips += src.BreakerTrips
	dst.BreakerFastFails += src.BreakerFastFails
	dst.FailedRequests += src.FailedRequests
	dst.QuarantinedHosts = append(dst.QuarantinedHosts, src.QuarantinedHosts...)
}

// wait blocks until the session's seq exceeds after, the timeout elapses,
// or ctx is done, then returns the current status.
func (s *session) wait(ctx context.Context, after uint64, timeout time.Duration) SessionStatus {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		seq := s.seq
		ch := s.change
		s.mu.Unlock()
		if seq > after {
			return s.status(true)
		}
		select {
		case <-ch:
		case <-deadline.C:
			return s.status(true)
		case <-ctx.Done():
			return s.status(true)
		}
	}
}

// Server is the daemon: session registry, scheduler, worker pool, host
// registry, and the durable store they all share.
type Server struct {
	cfg      Config
	store    *sbcrawl.Store
	ownStore bool
	records  sbcrawl.RecordStore
	hosts    *sbcrawl.HostRegistry
	sched    *scheduler
	workers  int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session

	siteMu sync.Mutex
	sites  map[SiteSpec]*sbcrawl.Site
}

// New opens the store (surfacing sbcrawl.ErrStoreLocked when another
// process owns it), reloads every durable session — re-enqueuing unfinished
// ones most-complete-first — and starts the worker pool.
func New(cfg Config) (*Server, error) {
	st := cfg.Store
	own := false
	if st == nil {
		if cfg.StorePath == "" {
			return nil, errors.New("serve: Config.StorePath or Config.Store is required — sessions are durable, the daemon needs its store")
		}
		var err error
		if st, err = sbcrawl.OpenStore(cfg.StorePath); err != nil {
			return nil, err
		}
		own = true
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:      cfg,
		store:    st,
		ownStore: own,
		records:  st.Records("crawld"),
		hosts:    sbcrawl.NewHostRegistry(),
		sched:    newScheduler(),
		workers:  workers,
		sessions: make(map[string]*session),
		sites:    make(map[SiteSpec]*sbcrawl.Site),
	}
	if cfg.PolitenessFloor > 0 {
		s.hosts.SetFloor(cfg.PolitenessFloor)
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.reload()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops the daemon: in-flight crawls are cancelled at their next
// request (their responses are already durable, so nothing is lost), the
// workers drain, and the store — if the daemon opened it — is closed,
// releasing the writer lock for the next incarnation.
func (s *Server) Close() error {
	s.cancel()
	s.sched.close()
	s.wg.Wait()
	if s.ownStore {
		return s.store.Close()
	}
	return nil
}

// Hosts snapshots the politeness registry.
func (s *Server) Hosts() []HostStatus {
	usage := s.hosts.Usage()
	out := make([]HostStatus, len(usage))
	for i, u := range usage {
		out[i] = HostStatus{Host: u.Host, Grants: u.Grants, Waited: u.Waited, LastGrant: u.LastGrant}
	}
	return out
}

// Stats snapshots the daemon.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tenants := make(map[string]bool)
	st := Stats{Sessions: len(s.sessions), Workers: s.workers, StorePath: s.store.Path()}
	for _, sess := range s.sessions {
		tenants[sess.spec.Tenant] = true
		if !sess.status(false).Done() {
			st.Active++
		}
	}
	s.mu.Unlock()
	st.Tenants = len(tenants)
	st.QueuedUnits = s.sched.queuedTotal()
	st.Hosts = s.hosts.HostCount()
	return st
}

// Create creates the session — or attaches to it: the same (tenant, name)
// with the same spec returns the existing session's status, whatever state
// it is in, which is how clients re-attach after a disconnect or a daemon
// restart. A different spec under an existing name is a conflict.
func (s *Server) Create(spec SessionSpec) (SessionStatus, error) {
	if spec.Tenant == "" || spec.Name == "" {
		return SessionStatus{}, errInvalid("session needs a tenant and a name")
	}
	if spec.units() == 0 {
		return SessionStatus{}, errInvalid("session needs at least one site or root")
	}
	if lim := s.cfg.Limits.SessionUnits; lim > 0 && spec.units() > lim {
		return SessionStatus{}, errLimit("session asks for %d units, limit is %d", spec.units(), lim)
	}
	id := SessionID(spec.Tenant, spec.Name)

	s.mu.Lock()
	if existing := s.sessions[id]; existing != nil {
		s.mu.Unlock()
		if !reflect.DeepEqual(existing.spec, spec) {
			return SessionStatus{}, errConflict("session %s/%s exists with a different spec", spec.Tenant, spec.Name)
		}
		return existing.status(true), nil
	}
	if lim := s.cfg.Limits.TenantSessions; lim > 0 {
		active := 0
		for _, sess := range s.sessions {
			if sess.spec.Tenant == spec.Tenant && !sess.status(false).Done() {
				active++
			}
		}
		if active >= lim {
			s.mu.Unlock()
			return SessionStatus{}, errLimit("tenant %q already has %d active sessions, limit is %d", spec.Tenant, active, lim)
		}
	}
	if lim := s.cfg.Limits.TenantQueue; lim > 0 {
		if q := s.sched.queued(spec.Tenant); q+spec.units() > lim {
			s.mu.Unlock()
			return SessionStatus{}, errLimit("tenant %q has %d units queued; %d more would exceed the limit of %d", spec.Tenant, q, spec.units(), lim)
		}
	}
	sess := s.newSession(id, spec, StateRunning)
	s.sessions[id] = sess
	s.mu.Unlock()

	s.putRecord(sessionRecord{Spec: spec, Created: time.Now()})
	s.enqueue(sess, nil)
	return sess.status(true), nil
}

// Get returns a session's status with results.
func (s *Server) Get(id string) (SessionStatus, error) {
	sess := s.lookup(id)
	if sess == nil {
		return SessionStatus{}, errNotFound(id)
	}
	return sess.status(true), nil
}

// Wait long-polls a session: it returns as soon as the session's change
// sequence exceeds after (0 returns immediately), or after timeout.
func (s *Server) Wait(ctx context.Context, id string, after uint64, timeout time.Duration) (SessionStatus, error) {
	sess := s.lookup(id)
	if sess == nil {
		return SessionStatus{}, errNotFound(id)
	}
	if timeout <= 0 {
		return sess.status(true), nil
	}
	return sess.wait(ctx, after, timeout), nil
}

// Cancel cancels a session: queued units are discarded, the running ones
// stop at their next request, and the cancellation is durable — a
// restarted daemon will not resurrect the session's work.
func (s *Server) Cancel(id string) (SessionStatus, error) {
	sess := s.lookup(id)
	if sess == nil {
		return SessionStatus{}, errNotFound(id)
	}
	sess.mu.Lock()
	if sess.state == StateRunning {
		sess.state = StateCancelled
		sess.bump()
	}
	sess.mu.Unlock()
	sess.cancel()
	s.putRecord(sessionRecord{Spec: sess.spec, Cancelled: true})
	return sess.status(true), nil
}

// List returns every session's status (no results), newest-name-last by
// (tenant, name); tenant filters when non-empty.
func (s *Server) List(tenant string) []SessionStatus {
	s.mu.Lock()
	out := make([]SessionStatus, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if tenant != "" && sess.spec.Tenant != tenant {
			continue
		}
		out = append(out, sess.status(false))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// newSession builds the in-memory session (caller registers it).
func (s *Server) newSession(id string, spec SessionSpec, state string) *session {
	sess := &session{
		id:     id,
		spec:   spec,
		state:  state,
		change: make(chan struct{}),
	}
	sess.ctx, sess.cancel = context.WithCancel(s.ctx)
	for _, site := range spec.Sites {
		sess.labels = append(sess.labels, site.Code)
	}
	sess.labels = append(sess.labels, spec.Roots...)
	sess.progress = make([]sbcrawl.CrawlProgress, len(sess.labels))
	sess.results = make([]*UnitResult, len(sess.labels))
	return sess
}

// putRecord persists a session record under its stable key.
func (s *Server) putRecord(rec sessionRecord) {
	id := SessionID(rec.Spec.Tenant, rec.Spec.Name)
	if err := s.records.Put("sess|"+id, encodeSessionRecord(&rec)); err != nil {
		return
	}
	s.records.Sync()
}

// enqueue hands the session's units to the scheduler. order, when non-nil,
// is the dispatch order over unit indices (reload uses most-complete-first);
// nil means unit order.
func (s *Server) enqueue(sess *session, order []int) {
	units := make([]*unit, len(sess.labels))
	for i := range units {
		units[i] = &unit{sess: sess, index: i, label: sess.labels[i]}
	}
	if order != nil {
		reordered := make([]*unit, 0, len(units))
		for _, i := range order {
			reordered = append(reordered, units[i])
		}
		units = reordered
	}
	s.sched.enqueue(sess.spec.Tenant, sess.spec.Weight, units)
}

// unitConfig builds the exact Config unit i of the session crawls with —
// identical across daemon restarts, which is what makes resumed sessions
// byte-identical: the config's fingerprint selects the same durable state
// every time.
func (s *Server) unitConfig(sess *session, i int) sbcrawl.Config {
	cfg := sess.spec.Crawl.config()
	cfg.Store = s.store
	cfg.Resume = true
	if i < len(sess.spec.Sites) {
		// Same per-site seed derivation as sbcrawl.CrawlSites, so a session
		// over N sites reproduces the library fleet byte for byte.
		cfg.Seed = fleet.DeriveSeed(sess.spec.Crawl.Seed, i)
	} else {
		cfg.Root = sess.spec.Roots[i-len(sess.spec.Sites)]
		cfg.Hosts = s.hosts
	}
	return cfg
}

// site returns the generated site for a spec, building it once: sessions
// naming the same (code, scale, seed) share the immutable Site.
func (s *Server) site(spec SiteSpec) (*sbcrawl.Site, error) {
	s.siteMu.Lock()
	defer s.siteMu.Unlock()
	if site := s.sites[spec]; site != nil {
		return site, nil
	}
	site, err := sbcrawl.GenerateSite(spec.Code, spec.Scale, spec.Seed)
	if err != nil {
		return nil, err
	}
	s.sites[spec] = site
	return site, nil
}

// worker is one slot of the crawl pool.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		u, ok := s.sched.next()
		if !ok {
			return
		}
		s.runUnit(u)
	}
}

// runUnit executes one crawl unit inside its session's cancellation scope.
func (s *Server) runUnit(u *unit) {
	sess := u.sess
	cfg := s.unitConfig(sess, u.index)
	cfg.Progress = func(p sbcrawl.CrawlProgress) { sess.setProgress(u.index, p) }
	var (
		res *sbcrawl.Result
		err error
	)
	if u.index < len(sess.spec.Sites) {
		var site *sbcrawl.Site
		if site, err = s.site(sess.spec.Sites[u.index]); err == nil {
			res, err = sbcrawl.CrawlSiteCtx(sess.ctx, site, cfg)
		}
	} else {
		res, err = sbcrawl.CrawlCtx(sess.ctx, cfg)
	}
	// A unit cut off by cancellation produced a partial result that the
	// store will re-execute past on resume; only completed units are final.
	interrupted := sess.ctx.Err() != nil && err == nil
	sess.finishUnit(u.index, res, err, interrupted)
}

// reload rebuilds every durable session at startup. Non-cancelled sessions
// re-enqueue all their units with most-complete-first dispatch: finished
// units short-circuit from their done-records (re-materializing their
// results at memory speed), interrupted ones resume by re-execution over
// the replay database, untouched ones crawl fresh — and the session reaches
// the exact state an uninterrupted daemon would have produced. Cancelled
// sessions are rebuilt as terminal records so clients still see them.
func (s *Server) reload() {
	for _, key := range s.records.Keys("sess|") {
		raw, ok := s.records.Get(key)
		if !ok {
			continue
		}
		rec, err := decodeSessionRecord(raw)
		if err != nil {
			continue // skip a corrupt record rather than refuse to start
		}
		id := SessionID(rec.Spec.Tenant, rec.Spec.Name)
		state := StateRunning
		if rec.Cancelled {
			state = StateCancelled
		}
		sess := s.newSession(id, rec.Spec, state)
		s.mu.Lock()
		s.sessions[id] = sess
		s.mu.Unlock()
		if rec.Cancelled {
			continue
		}
		// Store-aware resume scheduling, the serve-layer twin of the fleet
		// ordering: rank this session's units by their durable progress.
		order := resumeOrder(len(sess.labels), func(i int) sbcrawl.CrawlProgress {
			return s.unitProgress(sess, i)
		})
		s.enqueue(sess, order)
	}
}

// unitProgress reads unit i's durable progress without executing anything.
func (s *Server) unitProgress(sess *session, i int) sbcrawl.CrawlProgress {
	cfg := s.unitConfig(sess, i)
	if i < len(sess.spec.Sites) {
		site, err := s.site(sess.spec.Sites[i])
		if err != nil {
			return sbcrawl.CrawlProgress{}
		}
		return s.store.SiteProgress(site, cfg)
	}
	return s.store.LiveProgress(cfg)
}

// resumeOrder ranks unit indices most-complete-first: done units first,
// then by checkpointed requests descending, ties in unit order. Nil when
// everything is cold.
func resumeOrder(n int, progress func(i int) sbcrawl.CrawlProgress) []int {
	ps := make([]sbcrawl.CrawlProgress, n)
	warm := false
	for i := 0; i < n; i++ {
		ps[i] = progress(i)
		if ps[i].Done || ps[i].Requests > 0 {
			warm = true
		}
	}
	if !warm {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := ps[order[a]], ps[order[b]]
		if pa.Done != pb.Done {
			return pa.Done
		}
		return pa.Requests > pb.Requests
	})
	return order
}
