package serve

// BenchmarkServeSessions is the scale gate behind scripts/bench.sh serve:
// one daemon multiplexing >= 1k concurrent sessions across 8 tenants over
// the HTTP API, reporting sessions/s plus attach (POST /v1/sessions) and
// step (GET /v1/sessions/{id}) latency percentiles. Sessions use distinct
// crawl seeds so every one is a real crawl — none short-circuit from a
// neighbor's done-record.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

// percentile returns the p-th percentile (0 < p <= 100) of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1) * p / 100)
	return sorted[idx]
}

func BenchmarkServeSessions(b *testing.B) {
	const (
		sessions = 1024
		tenants  = 8
	)
	for iter := 0; iter < b.N; iter++ {
		b.StopTimer()
		srv, err := New(Config{StorePath: b.TempDir(), Workers: 8})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		client := NewClient(ts.URL)
		ctx := context.Background()
		// Four tiny cached sites shared by all sessions; distinct crawl
		// seeds make every session a distinct fingerprint (a real crawl).
		siteSpecs := []SiteSpec{
			{Code: "cl", Scale: 0.005, Seed: 1},
			{Code: "cn", Scale: 0.005, Seed: 2},
			{Code: "ju", Scale: 0.005, Seed: 3},
			{Code: "ab", Scale: 0.005, Seed: 4},
		}
		b.StartTimer()

		start := time.Now()
		attach := make([]time.Duration, sessions)
		step := make([]time.Duration, sessions)
		ids := make([]string, sessions)
		var wg sync.WaitGroup
		sem := make(chan struct{}, 64) // client-side concurrency, not a daemon limit
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				spec := SessionSpec{
					Tenant: fmt.Sprintf("tenant-%d", i%tenants),
					Name:   fmt.Sprintf("s-%04d", i),
					Crawl:  CrawlSpec{Strategy: "sb", Seed: int64(i), MaxRequests: 40},
					Sites:  []SiteSpec{siteSpecs[i%len(siteSpecs)]},
				}
				t0 := time.Now()
				st, err := client.Create(ctx, spec)
				attach[i] = time.Since(t0)
				if err != nil {
					b.Error(err)
					return
				}
				ids[i] = st.ID
				t0 = time.Now()
				if _, err := client.Get(ctx, st.ID); err != nil {
					b.Error(err)
				}
				step[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
		// Every session now exists concurrently; peak load is all of them.
		peak := srv.Stats()
		for _, id := range ids {
			if id == "" {
				continue
			}
			if _, err := client.WaitDone(ctx, id); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)

		b.StopTimer()
		sort.Slice(attach, func(i, j int) bool { return attach[i] < attach[j] })
		sort.Slice(step, func(i, j int) bool { return step[i] < step[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		b.ReportMetric(float64(sessions)/elapsed.Seconds(), "sessions/s")
		b.ReportMetric(float64(peak.Sessions), "peak_sessions")
		b.ReportMetric(ms(percentile(attach, 50)), "attach_p50_ms")
		b.ReportMetric(ms(percentile(attach, 95)), "attach_p95_ms")
		b.ReportMetric(ms(percentile(attach, 99)), "attach_p99_ms")
		b.ReportMetric(ms(percentile(step, 50)), "step_p50_ms")
		b.ReportMetric(ms(percentile(step, 95)), "step_p95_ms")
		b.ReportMetric(ms(percentile(step, 99)), "step_p99_ms")
		ts.Close()
		srv.Close()
		b.StartTimer()
	}
}
