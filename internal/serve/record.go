package serve

// Binary codec for durable session records (internal/codec framing,
// KindSessionRecord). Created travels as a Unix seconds + nanosecond
// pair — not UnixNano, which is undefined outside years 1678–2262 and
// silently mangles the zero time a sparse gob-era record decodes to.
// Reload falls back to the gob decoder for records written before the
// codec (legacy_gob.go).

import (
	"time"

	"sbcrawl/internal/codec"
)

// encodeSessionRecord serializes a session record for durable storage.
func encodeSessionRecord(rec *sessionRecord) []byte {
	dst := codec.AppendHeader(make([]byte, 0, 256), codec.KindSessionRecord)
	dst = codec.AppendString(dst, rec.Spec.Tenant)
	dst = codec.AppendString(dst, rec.Spec.Name)
	dst = codec.AppendInt(dst, rec.Spec.Weight)
	dst = appendCrawlSpec(dst, &rec.Spec.Crawl)
	if rec.Spec.Sites == nil {
		dst = codec.AppendUvarint(dst, 0)
	} else {
		dst = codec.AppendUvarint(dst, uint64(len(rec.Spec.Sites))+1)
		for _, site := range rec.Spec.Sites {
			dst = codec.AppendString(dst, site.Code)
			dst = codec.AppendFloat64(dst, site.Scale)
			dst = codec.AppendVarint(dst, site.Seed)
		}
	}
	dst = codec.AppendStrings(dst, rec.Spec.Roots)
	dst = codec.AppendBool(dst, rec.Cancelled)
	dst = codec.AppendVarint(dst, rec.Created.Unix())
	dst = codec.AppendVarint(dst, int64(rec.Created.Nanosecond()))
	return dst
}

func appendCrawlSpec(dst []byte, c *CrawlSpec) []byte {
	dst = codec.AppendString(dst, c.Strategy)
	dst = codec.AppendInt(dst, c.MaxRequests)
	dst = codec.AppendVarint(dst, c.Seed)
	dst = codec.AppendBool(dst, c.EarlyStop)
	dst = codec.AppendVarint(dst, int64(c.SimLatency))
	dst = codec.AppendInt(dst, c.Prefetch)
	dst = codec.AppendInt(dst, c.Partitions)
	dst = codec.AppendInt(dst, c.ParseWorkers)
	dst = codec.AppendVarint(dst, int64(c.Politeness))
	dst = codec.AppendStrings(dst, c.TargetMIMEs)
	dst = codec.AppendFloat64(dst, c.Theta)
	dst = codec.AppendFloat64(dst, c.Alpha)
	dst = codec.AppendInt(dst, c.NGram)
	dst = codec.AppendInt(dst, c.BatchSize)
	dst = codec.AppendString(dst, c.ClassifierModel)
	dst = codec.AppendString(dst, c.UserAgent)
	dst = codec.AppendInt(dst, c.CheckpointEvery)
	dst = codec.AppendInt(dst, c.Retries)
	dst = codec.AppendFloat64(dst, c.FaultRate)
	dst = codec.AppendVarint(dst, c.FaultSeed)
	dst = codec.AppendStrings(dst, c.FaultDeadHosts)
	return dst
}

// decodeSessionRecord decodes a durable session record, gob-era records
// included.
func decodeSessionRecord(raw []byte) (sessionRecord, error) {
	var rec sessionRecord
	payload, legacy, err := codec.Header(raw, codec.KindSessionRecord)
	if err != nil {
		return rec, err
	}
	if legacy {
		err := decodeSessionRecordGob(raw, &rec)
		return rec, err
	}
	r := codec.NewReader(payload)
	rec.Spec.Tenant = r.String()
	rec.Spec.Name = r.String()
	rec.Spec.Weight = r.Int()
	readCrawlSpec(&r, &rec.Spec.Crawl)
	if n, ok := r.SliceLen(); ok {
		rec.Spec.Sites = make([]SiteSpec, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			rec.Spec.Sites = append(rec.Spec.Sites, SiteSpec{
				Code:  r.String(),
				Scale: r.Float64(),
				Seed:  r.Varint(),
			})
		}
	}
	rec.Spec.Roots = r.Strings()
	rec.Cancelled = r.Bool()
	sec := r.Varint()
	rec.Created = time.Unix(sec, r.Varint())
	return rec, r.Close()
}

func readCrawlSpec(r *codec.Reader, c *CrawlSpec) {
	c.Strategy = r.String()
	c.MaxRequests = r.Int()
	c.Seed = r.Varint()
	c.EarlyStop = r.Bool()
	c.SimLatency = time.Duration(r.Varint())
	c.Prefetch = r.Int()
	c.Partitions = r.Int()
	c.ParseWorkers = r.Int()
	c.Politeness = time.Duration(r.Varint())
	c.TargetMIMEs = r.Strings()
	c.Theta = r.Float64()
	c.Alpha = r.Float64()
	c.NGram = r.Int()
	c.BatchSize = r.Int()
	c.ClassifierModel = r.String()
	c.UserAgent = r.String()
	c.CheckpointEvery = r.Int()
	c.Retries = r.Int()
	c.FaultRate = r.Float64()
	c.FaultSeed = r.Varint()
	c.FaultDeadHosts = r.Strings()
}
