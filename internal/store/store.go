// Package store is the persistent crawl store: a durable, append-only
// key/value log that the crawl stack writes its replay database,
// checkpoints, and speculation-cache spill through, so a budgeted crawl can
// stop and resume and a fleet can survive a process restart (the BUbiNG
// discipline of persisting the frontier/workbench, applied to this
// reproduction's replay-database design).
//
// # On-disk format
//
// A store is a directory of numbered segment files, 00000001.seg,
// 00000002.seg, …, each an append-only sequence of records:
//
//	uint32 keyLen | uint32 valLen | uint32 crc32(IEEE, key ‖ val) | key | val
//
// (little-endian header, 12 bytes). Records are never rewritten in place:
// a Put of an existing key appends a fresh record, and the in-memory index
// — key → (segment, offset, length), rebuilt by scanning the segments in
// order on Open — always points at the newest copy. Get reads the value
// back from its segment, so resident memory stays proportional to the key
// set, not the stored bytes.
//
// A group commit (PutBatch) appends many entries under one header and one
// CRC region, using keyLen == 0 as the batch sentinel — unreachable in
// plain records, since Put rejects empty keys (and pre-batch builds read a
// zero keyLen as corruption, so old logs never contain it):
//
//	uint32 0 | uint32 payloadLen | uint32 crc32(IEEE, payload) | payload
//	payload: uvarint count, then per entry:
//	         uvarint keyLen | uvarint valLen | key | val
//
// # Snapshots
//
// Superseded records are garbage until Snapshot() compacts the store: it
// writes every live entry into one fresh segment (in sorted key order),
// syncs it, and deletes the older segments. Close() compacts automatically
// when more than half of the stored bytes are garbage. Between snapshots a
// record is durable once Sync() has flushed it (Put appends to an
// in-process write buffer; Get serves unflushed tail records straight from
// that buffer, so reads never force a flush); the crawl layer syncs at
// every checkpoint.
//
// # Corruption recovery
//
// Open never trusts a segment: a record whose header is implausible, whose
// CRC does not match, or which runs past end-of-file ends the scan of that
// segment at the last good record. A damaged tail segment is truncated back
// to its last good byte; damage is reported through Recovery() rather than
// by failing Open, so a crawl resumes from the last durable checkpoint
// instead of refusing to start. New writes always go to a fresh segment.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend is the byte-level durable map the crawl layers plug into
// (fetch.Replay's disk spill, checkpoint sinks, speculation-cache
// persistence). *Store implements it; Prefixed scopes one store into
// independent namespaces.
type Backend interface {
	// Put durably records key → val (last write wins).
	Put(key string, val []byte) error
	// PutBatch group-commits many entries: one record header and CRC
	// region for the whole batch, a single buffered write, one flush.
	PutBatch(kvs []KV) error
	// Get returns the newest value recorded for key.
	Get(key string) ([]byte, bool)
	// Keys lists, in sorted order, every live key with the prefix.
	Keys(prefix string) []string
	// Sync flushes buffered writes to the OS.
	Sync() error
}

// KV is one entry of a PutBatch group commit.
type KV struct {
	Key string
	Val []byte
}

const (
	recHeaderLen = 12
	maxKeyLen    = 1 << 20 // sanity bound: larger lengths mean corruption
	maxValLen    = 1 << 30
	segSuffix    = ".seg"
	// flushAt bounds the in-process write buffer: a Put or PutBatch that
	// grows it past this point flushes to the file before returning.
	flushAt = 1 << 16
)

// ErrLocked matches (via errors.Is) the failure of Open to acquire a store
// directory's writer lock: another Store — in this process or another one —
// already owns the directory. Callers that multiplex a store (the crawld
// daemon) test for it to turn a startup failure into an actionable message
// instead of a bare I/O error.
var ErrLocked = errors.New("store: directory locked by another writer")

// LockedError is the typed form of a writer-lock conflict: it names the
// contested directory and carries the hint a caller should surface. It
// unwraps to both ErrLocked and the underlying flock error.
type LockedError struct {
	// Dir is the store directory whose LOCK file is held elsewhere.
	Dir string
	// Err is the underlying lock-acquisition error (e.g. EWOULDBLOCK).
	Err error
}

func (e *LockedError) Error() string {
	return fmt.Sprintf("store: %s is already open for writing by another process or store handle "+
		"(flock on %s held): close the other crawl or daemon using this store, "+
		"share its open handle instead of re-opening the path, or point this one at a different directory: %v",
		e.Dir, filepath.Join(e.Dir, "LOCK"), e.Err)
}

func (e *LockedError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrLocked) succeed for any LockedError.
func (e *LockedError) Is(target error) bool { return target == ErrLocked }

// Recovery reports damage Open found and healed.
type Recovery struct {
	// Segment is the damaged file's name.
	Segment string
	// DroppedBytes is how much of it was unreadable and discarded.
	DroppedBytes int64
	// Truncated reports whether the file was cut back to its last good
	// record (tail damage) as opposed to merely skipped past.
	Truncated bool
}

// loc addresses one live record's value.
type loc struct {
	seg  int // index into s.segs
	off  int64
	vlen int
}

// segment is one on-disk log file.
type segment struct {
	name string
	f    *os.File
	size int64
}

// Store is a durable key/value log (see the package documentation for the
// format). It is safe for concurrent use: a fleet's crawls share one Store.
type Store struct {
	mu   sync.Mutex
	dir  string
	segs []segment
	// active writer state (always the last element of segs). wbuf holds
	// the active segment's unflushed tail: writes append whole records to
	// it (a record never straddles the flush boundary), Get serves
	// unflushed records from it, and flushLocked writes it out in one
	// syscall. The invariant len(wbuf) == active.size - flushedOff holds
	// between operations.
	wbuf       []byte
	flushedOff int64 // bytes of the active segment physically in the file
	index      map[string]loc
	liveBytes  int64 // record bytes reachable through the index
	totalBytes int64 // record bytes across all segments (live + garbage)
	recovered  []Recovery
	lock       *os.File // flock-held writer lock (LOCK file)
	closed     bool
}

// Open opens (creating if needed) the store directory, rebuilds the index
// from the segments, heals any corruption (see Recovery), and starts a
// fresh active segment for new writes.
//
// A directory has exactly one writer: Open takes an advisory flock on a
// LOCK file inside it and fails immediately when another process (or
// another Store in this process) holds it. The OS releases the lock when a
// crashed process dies, so recovery never needs manual unlocking.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, &LockedError{Dir: dir, Err: err}
	}
	names, err := segmentNames(dir)
	if err != nil {
		unlockFile(lock)
		lock.Close()
		return nil, err
	}
	s := &Store{dir: dir, index: make(map[string]loc), lock: lock}
	for i, name := range names {
		if err := s.scanSegment(name, i == len(names)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if err := s.startActive(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// segmentNames lists the directory's segment files in log order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded numbering makes this log order
	return names, nil
}

// scanSegment reads one segment into the index, healing damage. tail marks
// the log's last segment, the only one whose damage is physically
// truncated away (see the package doc).
func (s *Store) scanSegment(name string, tail bool) error {
	path := filepath.Join(s.dir, name)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	segIdx := len(s.segs)
	br := bufio.NewReaderSize(f, 1<<16)
	var off int64
	var hdr [recHeaderLen]byte
	key := make([]byte, 0, 256)
	for off < size {
		good := true
		var klen, vlen uint32
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			good = false
		} else {
			klen = binary.LittleEndian.Uint32(hdr[0:4])
			vlen = binary.LittleEndian.Uint32(hdr[4:8])
			if klen > maxKeyLen || vlen > maxValLen ||
				off+recHeaderLen+int64(klen)+int64(vlen) > size {
				good = false
			}
		}
		if good && klen == 0 {
			// keyLen == 0 is the PutBatch sentinel: one CRC-covered payload
			// holding many entries.
			want := binary.LittleEndian.Uint32(hdr[8:12])
			payload := make([]byte, vlen)
			if _, err := io.ReadFull(br, payload); err != nil {
				good = false
			} else if crc32.ChecksumIEEE(payload) != want {
				good = false
			} else if !s.indexBatch(segIdx, off, payload) {
				good = false
			} else {
				off += recHeaderLen + int64(vlen)
			}
		} else if good {
			want := binary.LittleEndian.Uint32(hdr[8:12])
			key = resize(key, int(klen))
			val := make([]byte, vlen)
			if _, err := io.ReadFull(br, key); err != nil {
				good = false
			} else if _, err := io.ReadFull(br, val); err != nil {
				good = false
			} else {
				crc := crc32.ChecksumIEEE(key)
				crc = crc32.Update(crc, crc32.IEEETable, val)
				if crc != want {
					good = false
				} else {
					recLen := recHeaderLen + int64(klen) + int64(vlen)
					s.indexRecord(string(key), loc{seg: segIdx, off: off + recHeaderLen + int64(klen), vlen: int(vlen)}, recLen)
					off += recLen
				}
			}
		}
		if !good {
			// Damage: drop everything from the first bad byte on. The tail
			// segment is physically truncated so the next process sees a
			// clean log; a mid-log segment is only skipped past — its later
			// records are unreachable once the scan loses framing, but the
			// bytes stay on disk for inspection.
			rec := Recovery{Segment: name, DroppedBytes: size - off}
			if tail {
				if err := f.Truncate(off); err == nil {
					rec.Truncated = true
					size = off
				}
			}
			s.recovered = append(s.recovered, rec)
			break
		}
	}
	s.totalBytes += size
	s.segs = append(s.segs, segment{name: name, f: f, size: size})
	return nil
}

// indexBatch parses one batch record's payload (whose record starts at
// byte off of segment segIdx) into the index. The whole payload is
// validated before anything is indexed, so a malformed batch is rejected
// in one piece — reported false and treated like a CRC mismatch.
func (s *Store) indexBatch(segIdx int, off int64, payload []byte) bool {
	type entry struct {
		key    string
		valOff int64
		vlen   int
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 || count > uint64(len(payload)) {
		return false
	}
	pos := n
	entries := make([]entry, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return false
		}
		pos += n
		vlen, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return false
		}
		pos += n
		if klen == 0 || klen > maxKeyLen || vlen > maxValLen ||
			int64(pos)+int64(klen)+int64(vlen) > int64(len(payload)) {
			return false
		}
		key := string(payload[pos : pos+int(klen)])
		pos += int(klen)
		entries = append(entries, entry{key: key, valOff: off + recHeaderLen + int64(pos), vlen: int(vlen)})
		pos += int(vlen)
	}
	if pos != len(payload) {
		return false
	}
	for _, e := range entries {
		s.indexRecord(e.key, loc{seg: segIdx, off: e.valOff, vlen: e.vlen},
			recHeaderLen+int64(len(e.key))+int64(e.vlen))
	}
	return true
}

// indexRecord points the index at a newly scanned or written record,
// keeping the live/garbage accounting straight. Batch entries are charged
// the plain-record overhead (their actual varint framing is smaller), so
// the garbage accounting stays one formula; GarbageRatio clamps the
// resulting small overestimate of live bytes.
func (s *Store) indexRecord(key string, l loc, recLen int64) {
	if old, ok := s.index[key]; ok {
		s.liveBytes -= recHeaderLen + int64(len(key)) + int64(old.vlen)
	}
	s.index[key] = l
	s.liveBytes += recLen
}

// startActive opens a fresh segment for writes, numbered after the last.
func (s *Store) startActive() error {
	next := 1
	if n := len(s.segs); n > 0 {
		if _, err := fmt.Sscanf(s.segs[n-1].name, "%d", &next); err == nil {
			next++
		} else {
			next = n + 1
		}
	}
	name := fmt.Sprintf("%08d%s", next, segSuffix)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, segment{name: name, f: f})
	s.wbuf = s.wbuf[:0]
	s.flushedOff = 0
	return nil
}

// appendRecord appends one plain record for key/val to the write buffer
// and returns its length. The CRC is computed over the buffered key‖val
// bytes, so the write path allocates nothing.
func (s *Store) appendRecord(key string, val []byte) int64 {
	start := len(s.wbuf)
	s.wbuf = append(s.wbuf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	s.wbuf = append(s.wbuf, key...)
	s.wbuf = append(s.wbuf, val...)
	rec := s.wbuf[start:]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[recHeaderLen:]))
	return int64(len(rec))
}

// Put implements Backend.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if len(key) == 0 || len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("store: key/value size out of range (key %d, val %d)", len(key), len(val))
	}
	active := &s.segs[len(s.segs)-1]
	recLen := s.appendRecord(key, val)
	s.indexRecord(key, loc{seg: len(s.segs) - 1, off: active.size + recHeaderLen + int64(len(key)), vlen: len(val)}, recLen)
	active.size += recLen
	s.totalBytes += recLen
	if len(s.wbuf) >= flushAt {
		return s.flushLocked()
	}
	return nil
}

// PutBatch implements Backend: the whole batch is framed as one record
// (single header, one CRC over the payload), appended to the write buffer
// in one piece, and flushed once — a group commit. Entries are
// individually indexed and readable immediately.
func (s *Store) PutBatch(kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	total := int64(binary.MaxVarintLen64)
	for _, kv := range kvs {
		if len(kv.Key) == 0 || len(kv.Key) > maxKeyLen || len(kv.Val) > maxValLen {
			return fmt.Errorf("store: key/value size out of range (key %d, val %d)", len(kv.Key), len(kv.Val))
		}
		total += 2*binary.MaxVarintLen64 + int64(len(kv.Key)) + int64(len(kv.Val))
	}
	if total > maxValLen {
		return fmt.Errorf("store: batch payload too large (%d bytes)", total)
	}
	active := &s.segs[len(s.segs)-1]
	start := len(s.wbuf)
	s.wbuf = append(s.wbuf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	s.wbuf = binary.AppendUvarint(s.wbuf, uint64(len(kvs)))
	for _, kv := range kvs {
		s.wbuf = binary.AppendUvarint(s.wbuf, uint64(len(kv.Key)))
		s.wbuf = binary.AppendUvarint(s.wbuf, uint64(len(kv.Val)))
		s.wbuf = append(s.wbuf, kv.Key...)
		valOff := int64(len(s.wbuf) - start) // offset of val within the record
		s.wbuf = append(s.wbuf, kv.Val...)
		s.indexRecord(kv.Key, loc{seg: len(s.segs) - 1, off: active.size + valOff, vlen: len(kv.Val)},
			recHeaderLen+int64(len(kv.Key))+int64(len(kv.Val)))
	}
	rec := s.wbuf[start:]
	payloadLen := len(rec) - recHeaderLen
	binary.LittleEndian.PutUint32(rec[4:8], uint32(payloadLen))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[recHeaderLen:]))
	recLen := int64(len(rec))
	active.size += recLen
	s.totalBytes += recLen
	return s.flushLocked()
}

// Get implements Backend.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.index[key]
	if !ok || s.closed {
		return nil, false
	}
	val := make([]byte, l.vlen)
	// A record still sitting in the write buffer is served straight from
	// it — read-your-writes without forcing a flush. Records are buffered
	// whole (flush drains the buffer completely), so a record is either
	// entirely in wbuf (value offset at or past flushedOff) or entirely
	// in the file.
	if l.seg == len(s.segs)-1 && l.off >= s.flushedOff {
		start := l.off - s.flushedOff
		copy(val, s.wbuf[start:start+int64(l.vlen)])
		return val, true
	}
	if _, err := s.segs[l.seg].f.ReadAt(val, l.off); err != nil {
		return nil, false
	}
	return val, true
}

// Has reports whether the key is live.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys implements Backend.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Recovery reports the damage Open healed (nil for a clean store).
func (s *Store) Recovery() []Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Recovery(nil), s.recovered...)
}

// GarbageRatio reports the fraction of stored bytes no longer reachable
// through the index (superseded records awaiting Snapshot).
func (s *Store) GarbageRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.totalBytes == 0 || s.liveBytes >= s.totalBytes {
		return 0
	}
	return float64(s.totalBytes-s.liveBytes) / float64(s.totalBytes)
}

// Sync implements Backend: buffered writes become visible to the OS (and to
// a post-crash Open).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if len(s.wbuf) > 0 {
		if _, err := s.segs[len(s.segs)-1].f.Write(s.wbuf); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.wbuf = s.wbuf[:0]
	}
	s.flushedOff = s.segs[len(s.segs)-1].size
	return nil
}

// Snapshot compacts the store: every live entry is rewritten into one fresh
// segment (sorted key order), the segment is fsynced, and the older
// segments are deleted. Afterwards GarbageRatio is 0 and Open rebuilds the
// index from the single snapshot segment plus whatever is appended later.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	old := s.segs
	// The snapshot segment is numbered after the current active one, so log
	// order still replays it last.
	s.segs = append([]segment(nil), s.segs...)
	if err := s.startActive(); err != nil {
		s.segs = old
		return err
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	newIdx := len(s.segs) - 1
	active := &s.segs[newIdx]
	var written int64
	newLocs := make(map[string]loc, len(keys))
	for _, k := range keys {
		l := s.index[k]
		val := make([]byte, l.vlen)
		if _, err := s.segs[l.seg].f.ReadAt(val, l.off); err != nil {
			return fmt.Errorf("store: snapshot read: %w", err)
		}
		recLen := s.appendRecord(k, val)
		newLocs[k] = loc{seg: newIdx, off: active.size + recHeaderLen + int64(len(k)), vlen: len(val)}
		active.size += recLen
		written += recLen
		if len(s.wbuf) >= flushAt {
			if err := s.flushLocked(); err != nil {
				return err
			}
		}
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Drop the superseded segments and renumber the index onto the snapshot.
	for _, seg := range old {
		seg.f.Close()
		os.Remove(filepath.Join(s.dir, seg.name))
	}
	s.segs = []segment{*active}
	for k, l := range newLocs {
		l.seg = 0
		newLocs[k] = l
	}
	s.index = newLocs
	s.liveBytes = written
	s.totalBytes = written
	s.flushedOff = active.size
	return nil
}

// Close flushes, compacts when more than half the stored bytes are garbage,
// and releases the file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	compact := s.totalBytes > 0 && float64(s.totalBytes-s.liveBytes) > 0.5*float64(s.totalBytes)
	s.mu.Unlock()
	if compact {
		if err := s.Snapshot(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closeFiles()
	s.closed = true
	return err
}

func (s *Store) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
	if s.lock != nil {
		unlockFile(s.lock)
		s.lock.Close()
		s.lock = nil
	}
}

var _ Backend = (*Store)(nil)

// Prefixed scopes a Backend into a namespace: every key is transparently
// prefixed, so independent layers (per-site replay databases, checkpoints,
// the speculation spill) share one physical store without colliding.
func Prefixed(b Backend, prefix string) Backend {
	return &prefixed{b: b, p: prefix}
}

type prefixed struct {
	b Backend
	p string
}

func (pb *prefixed) Put(key string, val []byte) error { return pb.b.Put(pb.p+key, val) }
func (pb *prefixed) Get(key string) ([]byte, bool)    { return pb.b.Get(pb.p + key) }
func (pb *prefixed) Sync() error                      { return pb.b.Sync() }
func (pb *prefixed) PutBatch(kvs []KV) error {
	mapped := make([]KV, len(kvs))
	for i, kv := range kvs {
		mapped[i] = KV{Key: pb.p + kv.Key, Val: kv.Val}
	}
	return pb.b.PutBatch(mapped)
}
func (pb *prefixed) Keys(prefix string) []string {
	full := pb.b.Keys(pb.p + prefix)
	out := make([]string, len(full))
	for i, k := range full {
		out[i] = strings.TrimPrefix(k, pb.p)
	}
	return out
}

func resize(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
