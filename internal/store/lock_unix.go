//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes the store directory's advisory writer lock (non-blocking):
// flock is released by the OS when the process dies, so a crashed crawl
// never wedges its store.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
