//go:build !unix

package store

import "os"

// Non-unix platforms have no flock; the store then relies on the caller
// honoring the one-writer-per-directory contract.
func lockFile(*os.File) error   { return nil }
func unlockFile(*os.File) error { return nil }
