package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		v, ok := s.Get(fmt.Sprintf("k%03d", i))
		if !ok || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(k%03d) = %q, %v", i, v, ok)
		}
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) = true")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt from the segments.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 100 {
		t.Fatalf("reopened Len = %d, want 100", got)
	}
	v, ok := s2.Get("k042")
	if !ok || string(v) != "value-42" {
		t.Fatalf("reopened Get(k042) = %q, %v", v, ok)
	}
	if rec := s2.Recovery(); rec != nil {
		t.Fatalf("clean store reported recovery: %+v", rec)
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := s.Get("k"); string(v) != "v4" {
		t.Fatalf("Get = %q, want v4", v)
	}
	if s.GarbageRatio() <= 0 {
		t.Fatal("superseded records should count as garbage")
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Get("k"); string(v) != "v4" {
		t.Fatalf("reopened Get = %q, want v4", v)
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestKeysPrefixAndPrefixed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ns := Prefixed(s, "a|")
	other := Prefixed(s, "b|")
	ns.Put("x", []byte("1"))
	ns.Put("y", []byte("2"))
	other.Put("x", []byte("3"))
	if got := ns.Keys(""); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("ns.Keys = %v", got)
	}
	if v, _ := other.Get("x"); string(v) != "3" {
		t.Fatalf("namespaces collided: %q", v)
	}
	if got := s.Keys("a|"); !reflect.DeepEqual(got, []string{"a|x", "a|y"}) {
		t.Fatalf("raw Keys = %v", got)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%02d", i%10), []byte(fmt.Sprintf("gen-%d", i)))
	}
	if s.GarbageRatio() < 0.5 {
		t.Fatalf("expected heavy garbage before snapshot, got %.2f", s.GarbageRatio())
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if g := s.GarbageRatio(); g != 0 {
		t.Fatalf("GarbageRatio after snapshot = %.2f, want 0", g)
	}
	// The store still serves, accepts writes, and survives a reopen.
	if v, _ := s.Get("k03"); string(v) != "gen-43" {
		t.Fatalf("post-snapshot Get = %q", v)
	}
	s.Put("new", []byte("after"))
	s.Close()

	files, _ := os.ReadDir(dir)
	if len(files) > 2 {
		t.Fatalf("snapshot left %d segments behind", len(files))
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.Len(); n != 11 {
		t.Fatalf("reopened Len = %d, want 11", n)
	}
	if v, _ := s2.Get("new"); string(v) != "after" {
		t.Fatalf("post-snapshot append lost: %q", v)
	}
}

// corruptTail opens the newest non-empty segment and damages its tail.
func corruptTail(t *testing.T, dir string, f func(data []byte) []byte) {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			continue
		}
		if err := os.WriteFile(path, f(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no non-empty segment to corrupt")
}

func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	s.Close()
	// Chop the last record in half, as a crash mid-write would.
	corruptTail(t, dir, func(data []byte) []byte { return data[:len(data)-60] })

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open should recover, not fail: %v", err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if len(rec) != 1 || rec[0].DroppedBytes == 0 || !rec[0].Truncated {
		t.Fatalf("Recovery = %+v, want one truncated-tail report", rec)
	}
	// Everything before the damaged record survives.
	if n := s2.Len(); n != 19 {
		t.Fatalf("Len after recovery = %d, want 19", n)
	}
	if v, ok := s2.Get("k18"); !ok || !bytes.Equal(v, bytes.Repeat([]byte{18}, 100)) {
		t.Fatalf("Get(k18) after recovery = %v, %v", v, ok)
	}
	if _, ok := s2.Get("k19"); ok {
		t.Fatal("the damaged record should be gone")
	}
	// Recovery is sticky-clean: a re-open after healing reports nothing.
	s2.Put("k19", []byte("rewritten"))
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec := s3.Recovery(); rec != nil {
		t.Fatalf("healed store still reports recovery: %+v", rec)
	}
	if v, _ := s3.Get("k19"); string(v) != "rewritten" {
		t.Fatalf("Get(k19) = %q", v)
	}
}

func TestRecoveryCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 50))
	}
	s.Close()
	// Flip a byte inside the last record's value.
	corruptTail(t, dir, func(data []byte) []byte {
		data[len(data)-10] ^= 0xff
		return data
	})
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open should recover, not fail: %v", err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); len(rec) != 1 {
		t.Fatalf("Recovery = %+v, want one report", rec)
	}
	if n := s2.Len(); n != 9 {
		t.Fatalf("Len = %d, want 9 (the flipped record dropped)", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || string(v) != key {
					t.Errorf("Get(%s) = %q, %v", key, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := s.Len(); n != 8*200 {
		t.Fatalf("Len = %d, want %d", n, 8*200)
	}
}

func TestSyncMakesWritesDurable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("k", []byte("v"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: drop the handles without Close's flush.
	s.mu.Lock()
	s.closeFiles()
	s.closed = true
	s.mu.Unlock()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("synced record lost: %q, %v", v, ok)
	}
}

func TestOpenRefusesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("second Open of a live store must fail")
	}
	// The conflict is typed and actionable: it matches ErrLocked, exposes
	// the contested directory, and the message tells the operator what to
	// do about it (another process owns the store).
	if !errors.Is(err, ErrLocked) {
		t.Errorf("second Open error does not match ErrLocked: %v", err)
	}
	var lerr *LockedError
	if !errors.As(err, &lerr) {
		t.Fatalf("second Open error is not a *LockedError: %T %v", err, err)
	}
	if lerr.Dir != dir {
		t.Errorf("LockedError.Dir = %q, want %q", lerr.Dir, dir)
	}
	for _, hint := range []string{dir, "another process", "close the other"} {
		if !strings.Contains(err.Error(), hint) {
			t.Errorf("lock error %q does not mention %q", err, hint)
		}
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestRecoveryMidLogSkipsWithoutTruncating(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("first", []byte("one"))
	s.Close()
	s2, _ := Open(dir)
	s2.Put("second", []byte("two"))
	s2.Close()
	// Damage the FIRST (mid-log) segment: flip a byte inside its record.
	names, err := segmentNames(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("want ≥2 segments, got %v (%v)", names, err)
	}
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("Open should recover: %v", err)
	}
	defer s3.Close()
	rec := s3.Recovery()
	if len(rec) != 1 || rec[0].Truncated {
		t.Fatalf("mid-log damage should be skipped, not truncated: %+v", rec)
	}
	// The damaged bytes stay on disk for inspection.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("mid-log segment was truncated from %d to %d bytes", len(data), len(after))
	}
	// Later segments still serve.
	if v, ok := s3.Get("second"); !ok || string(v) != "two" {
		t.Fatalf("Get(second) = %q, %v", v, ok)
	}
	if _, ok := s3.Get("first"); ok {
		t.Fatal("the damaged record should be unreachable")
	}
}
