package store

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchValue is a typical replay-database payload: a simulated page body of
// a few KB.
func benchValue(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	val := make([]byte, n)
	for i := range val {
		val[i] = byte('a' + rng.Intn(26))
	}
	return val
}

// BenchmarkStoreRoundTrip measures one Put + Get through the segment log —
// the per-response cost a disk-backed replay database pays (target: the
// ~100 MB/s BENCH_store.json trajectory).
func BenchmarkStoreRoundTrip(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := benchValue(4096)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%09d", i)
		if err := s.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Get(key); !ok {
			b.Fatal("lost record")
		}
	}
}

// BenchmarkStoreSnapshot measures compaction: rewriting a 1000-entry store
// (half of it garbage) into one snapshot segment.
func BenchmarkStoreSnapshot(b *testing.B) {
	val := benchValue(4096)
	b.SetBytes(int64(len(val)) * 1000)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2000; j++ {
			s.Put(fmt.Sprintf("k%04d", j%1000), val)
		}
		b.StartTimer()
		if err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkResumeOverhead measures Open on an existing store — the index
// rebuild a resumed crawl pays before its first replayed fetch.
func BenchmarkResumeOverhead(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	val := benchValue(4096)
	for j := 0; j < 1000; j++ {
		s.Put(fmt.Sprintf("k%04d", j), val)
	}
	s.Close()
	b.SetBytes(int64(len(val)) * 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != 1000 {
			b.Fatal("short index")
		}
		s.Close()
	}
}

// BenchmarkStorePutBatch measures the group-commit fast path against the
// same entries written as individual synced Puts — the spill pattern the
// speculation cache uses at crawl shutdown (one header and CRC region for
// the whole batch, one buffered write, one flush).
func BenchmarkStorePutBatch(b *testing.B) {
	const entries = 64
	val := benchValue(1024)
	kvs := make([]KV, entries)
	for i := range kvs {
		kvs[i] = KV{Key: fmt.Sprintf("spill%05d", i), Val: val}
	}
	b.Run("batch", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(entries * len(val)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.PutBatch(kvs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("puts", func(b *testing.B) {
		s, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.SetBytes(int64(entries * len(val)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, kv := range kvs {
				if err := s.Put(kv.Key, kv.Val); err != nil {
					b.Fatal(err)
				}
				if err := s.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
