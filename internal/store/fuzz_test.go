package store

// FuzzScanSegment: Open must survive any segment bytes — it either indexes
// a record or reports damage through Recovery(), and it never panics,
// over-allocates from a forged length, or fails the Open. The seed corpus
// is built from real store dumps: a segment written by this test (plain
// records plus a group-commit batch) and the checked-in gob-era fixture
// segment at testdata/gobstore_partial.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSampleSegment writes a store with plain and batch records and
// returns the raw bytes of its first segment.
func buildSampleSegment(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutBatch([]KV{
		{Key: "batch-a", Val: []byte("alpha")},
		{Key: "batch-b", Val: []byte("beta")},
		{Key: "key-3", Val: []byte("superseded")},
	}); err != nil {
		t.Fatal(err)
	}
	name := s.segs[0].name
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func FuzzScanSegment(f *testing.F) {
	f.Add(buildSampleSegment(f))
	if data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "gobstore_partial", "00000001.seg")); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})            // truncated header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0, 0, 0, 0, 0, 'k', 'v'}) // implausible keyLen

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		// The index must be internally consistent: every key Gets back.
		for _, k := range s.Keys("") {
			if _, ok := s.Get(k); !ok {
				t.Fatalf("indexed key %q unreadable", k)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestScanSegmentByteFlips mutates every byte of a real segment in turn:
// each flip must be caught — Open succeeds, and either the CRC/framing
// rejects the damaged region (Recovery reports it) or the store's live
// content differs from the pristine one. A flip that goes completely
// unnoticed would mean a hole in the CRC coverage.
func TestScanSegmentByteFlips(t *testing.T) {
	pristine := buildSampleSegment(t)
	want := map[string]string{}
	{
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range s.Keys("") {
			v, _ := s.Get(k)
			want[k] = string(v)
		}
		s.Close()
	}
	for off := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 0xFF
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		if len(s.Recovery()) == 0 {
			// No damage reported: the store must not silently serve wrong
			// bytes — everything it indexed must match the pristine content.
			for _, k := range s.Keys("") {
				v, _ := s.Get(k)
				if want[k] != string(v) {
					t.Fatalf("offset %d: silent corruption: %q = %q, want %q", off, k, v, want[k])
				}
			}
			t.Errorf("offset %d: flip not reported by Recovery()", off)
		}
		s.Close()
	}
}
