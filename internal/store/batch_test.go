package store

// Tests for the group-commit fast path (PutBatch) and the read-your-writes
// tail: Get must serve records still sitting in the write buffer without
// forcing a flush, PutBatch must frame the whole batch as one CRC-covered
// record that rescans correctly, and a damaged batch must be rejected
// atomically by recovery.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func segPath(dir string, s *Store) string {
	return filepath.Join(dir, s.segs[len(s.segs)-1].name)
}

func TestPutBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var kvs []KV
	for i := 0; i < 50; i++ {
		kvs = append(kvs, KV{Key: fmt.Sprintf("b%03d", i), Val: []byte(fmt.Sprintf("batch-value-%d", i))})
	}
	// Interleave with plain records on both sides of the batch.
	if err := s.Put("before", []byte("plain-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("after", []byte("plain-2")); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store, label string) {
		t.Helper()
		for i := 0; i < 50; i++ {
			v, ok := st.Get(fmt.Sprintf("b%03d", i))
			if !ok || string(v) != fmt.Sprintf("batch-value-%d", i) {
				t.Fatalf("%s: Get(b%03d) = %q, %v", label, i, v, ok)
			}
		}
		for k, want := range map[string]string{"before": "plain-1", "after": "plain-2"} {
			if v, ok := st.Get(k); !ok || string(v) != want {
				t.Fatalf("%s: Get(%s) = %q, %v", label, k, v, ok)
			}
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the batch record rescans into the same index.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2, "reopened")
	if rec := s2.Recovery(); rec != nil {
		t.Fatalf("clean batch store reported recovery: %+v", rec)
	}
}

func TestPutBatchLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch([]KV{{Key: "k", Val: []byte("v2")}, {Key: "k2", Val: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); string(v) != "v2" {
		t.Fatalf("batch did not supersede plain record: %q", v)
	}
	if err := s.Put("k", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); string(v) != "v3" {
		t.Fatalf("plain record did not supersede batch entry: %q", v)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, _ := s2.Get("k"); string(v) != "v3" {
		t.Fatalf("reopened order wrong: %q", v)
	}
}

func TestPutBatchEmptyAndInvalid(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := s.PutBatch([]KV{{Key: "", Val: []byte("x")}}); err == nil {
		t.Fatal("empty key accepted")
	}
	if v, ok := s.Get("x"); ok {
		t.Fatalf("rejected batch left a record: %q", v)
	}
}

// TestGetServesUnflushedTail: a Put is readable immediately, without the
// store touching the file — the old implementation flushed on every Get of
// an active-segment record.
func TestGetServesUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("tail", []byte("unflushed-value")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("tail"); !ok || string(v) != "unflushed-value" {
		t.Fatalf("Get(tail) = %q, %v", v, ok)
	}
	// The read must not have flushed: the active segment file is still empty.
	info, err := os.Stat(segPath(dir, s))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("Get flushed the write buffer: segment has %d bytes", info.Size())
	}
	// After Sync the same record is served from the file.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.wbuf); got != 0 {
		t.Fatalf("wbuf not drained by Sync: %d bytes", got)
	}
	if v, ok := s.Get("tail"); !ok || string(v) != "unflushed-value" {
		t.Fatalf("post-flush Get(tail) = %q, %v", v, ok)
	}
}

// TestWriteBufferAutoFlush: the write buffer is bounded — a burst of Puts
// beyond flushAt spills to the file without an explicit Sync.
func TestWriteBufferAutoFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 1024)
	for i := 0; i < 2*flushAt/len(val); i++ {
		if err := s.Put(fmt.Sprintf("k%04d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.wbuf); got > flushAt {
		t.Fatalf("write buffer grew past flushAt: %d bytes", got)
	}
	info, err := os.Stat(segPath(dir, s))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("no bytes reached the file despite exceeding flushAt")
	}
	// Every record is still readable, flushed or buffered.
	for i := 0; i < 2*flushAt/len(val); i++ {
		if _, ok := s.Get(fmt.Sprintf("k%04d", i)); !ok {
			t.Fatalf("Get(k%04d) missing", i)
		}
	}
}

// TestBatchCorruptionAtomic: a batch with a flipped payload byte is
// rejected whole on reopen — no partial index from a half-valid batch.
func TestBatchCorruptionAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	var kvs []KV
	for i := 0; i < 10; i++ {
		kvs = append(kvs, KV{Key: fmt.Sprintf("b%d", i), Val: []byte("batch-payload")})
	}
	batchStart := s.segs[len(s.segs)-1].size // batch record begins here
	if err := s.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the batch payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[batchStart+recHeaderLen+20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); len(rec) == 0 {
		t.Fatal("corrupted batch not reported")
	}
	if v, ok := s2.Get("keep"); !ok || string(v) != "survives" {
		t.Fatalf("record before damage lost: %q, %v", v, ok)
	}
	for i := 0; i < 10; i++ {
		if _, ok := s2.Get(fmt.Sprintf("b%d", i)); ok {
			t.Fatalf("entry b%d of the corrupted batch was indexed", i)
		}
	}
}

// TestPrefixedPutBatch: the namespace wrapper maps batch keys like Put.
func TestPrefixedPutBatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ns := Prefixed(s, "ns|")
	if err := ns.PutBatch([]KV{{Key: "a", Val: []byte("1")}, {Key: "b", Val: []byte("2")}}); err != nil {
		t.Fatal(err)
	}
	if v, ok := ns.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("prefixed Get(a) = %q, %v", v, ok)
	}
	if v, ok := s.Get("ns|b"); !ok || string(v) != "2" {
		t.Fatalf("raw Get(ns|b) = %q, %v", v, ok)
	}
	if got := ns.Keys(""); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("prefixed Keys = %v", got)
	}
}

// TestSnapshotPreservesBatchEntries: compaction rewrites batch entries as
// plain records and the store stays consistent after reopen.
func TestSnapshotPreservesBatchEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var kvs []KV
	for i := 0; i < 30; i++ {
		kvs = append(kvs, KV{Key: fmt.Sprintf("b%02d", i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if err := s.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.GarbageRatio(); got != 0 {
		t.Fatalf("GarbageRatio after snapshot = %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 30; i++ {
		if v, ok := s2.Get(fmt.Sprintf("b%02d", i)); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(b%02d) after snapshot+reopen = %q, %v", i, v, ok)
		}
	}
}
