package urlutil

import (
	"net/url"
	"strings"
	"testing"
	"testing/quick"
)

func TestScopeContainsPaperExamples(t *testing.T) {
	// These are exactly the examples from Section 2.2 of the paper.
	s, err := NewScope("https://www.A.B.com/index.php")
	if err != nil {
		t.Fatal(err)
	}
	in := []string{
		"https://www.A.B.com/folder/content.php",
		"https://www.C.A.B.com/page.html",
	}
	out := []string{
		"https://www.B.com/page.php",
		"https://edbticdt2026.github.io/?contents=EDBT_CFP.html",
	}
	for _, u := range in {
		if !s.Contains(u) {
			t.Errorf("Contains(%q) = false, want true", u)
		}
	}
	for _, u := range out {
		if s.Contains(u) {
			t.Errorf("Contains(%q) = true, want false", u)
		}
	}
}

func TestScopeWWWHandling(t *testing.T) {
	cases := []struct {
		root, probe string
		want        bool
	}{
		{"https://example.org/", "https://www.example.org/x", true},
		{"https://www.example.org/", "https://example.org/x", true},
		{"https://www.example.org/", "https://sub.example.org/x", true},
		{"https://example.org/", "https://notexample.org/x", false},
		{"https://example.org/", "https://example.org.evil.com/x", false},
		{"https://example.org/", "ftp://example.org/x", false},
		{"https://example.org/", "mailto:me@example.org", false},
		{"https://example.org/", "://bad", false},
	}
	for _, c := range cases {
		s, err := NewScope(c.root)
		if err != nil {
			t.Fatalf("NewScope(%q): %v", c.root, err)
		}
		if got := s.Contains(c.probe); got != c.want {
			t.Errorf("scope %q: Contains(%q) = %v, want %v", c.root, c.probe, got, c.want)
		}
	}
}

func TestNewScopeRejectsHostlessRoot(t *testing.T) {
	for _, root := range []string{"", "/relative/path", "not a url at all://"} {
		if _, err := NewScope(root); err == nil {
			t.Errorf("NewScope(%q) succeeded, want error", root)
		}
	}
}

func TestNormalize(t *testing.T) {
	base, _ := url.Parse("https://www.example.org/a/b/page.html")
	cases := []struct{ ref, want string }{
		{"c.html", "https://www.example.org/a/b/c.html"},
		{"/root.csv", "https://www.example.org/root.csv"},
		{"../up.pdf", "https://www.example.org/a/up.pdf"},
		{"https://Other.ORG:443/X", "https://other.org/X"},
		{"http://h:80/y", "http://h/y"},
		{"http://h:8080/y", "http://h:8080/y"},
		{"page.html#frag", "https://www.example.org/a/b/page.html"},
		{"javascript:void(0)", ""},
		{"mailto:x@y.z", ""},
		{"", ""},
		{"  spaced.html ", "https://www.example.org/a/b/spaced.html"},
		{"https://host.org", "https://host.org/"},
	}
	for _, c := range cases {
		if got := Normalize(base, c.ref); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.ref, got, c.want)
		}
	}
}

func TestExtension(t *testing.T) {
	cases := []struct{ raw, want string }{
		{"https://x.org/data/file.csv", ".csv"},
		{"https://x.org/data/file.CSV", ".csv"},
		{"https://x.org/data/file.csv?dl=1", ".csv"},
		{"https://x.org/en/node/9961", ""},
		{"https://x.org/trailing.", ""},
		{"https://x.org/", ""},
		{"https://x.org/archive.tar.gz", ".gz"},
	}
	for _, c := range cases {
		if got := Extension(c.raw); got != c.want {
			t.Errorf("Extension(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestDepth(t *testing.T) {
	cases := []struct {
		raw  string
		want int
	}{
		{"https://x.org/", 0},
		{"https://x.org/a", 1},
		{"https://x.org/a/b/c.html", 3},
		{"https://x.org/a//b/", 2},
	}
	for _, c := range cases {
		if got := Depth(c.raw); got != c.want {
			t.Errorf("Depth(%q) = %d, want %d", c.raw, got, c.want)
		}
	}
}

func TestMIMESet(t *testing.T) {
	s := DefaultTargetSet()
	if len(s) != 38 {
		t.Fatalf("default target set has %d entries, want 38", len(s))
	}
	if !s.Contains("text/csv") {
		t.Error("text/csv should be a target MIME")
	}
	if !s.Contains("Text/CSV; charset=utf-8") {
		t.Error("MIME matching must ignore case and parameters")
	}
	if s.Contains("text/html") {
		t.Error("text/html must not be a target MIME")
	}
	if s.Contains("video/mp4") {
		t.Error("video/mp4 must not be a target MIME")
	}
}

func TestIsHTML(t *testing.T) {
	if !IsHTML("text/html; charset=ISO-8859-1") {
		t.Error("text/html with params should be HTML")
	}
	if !IsHTML("application/xhtml+xml") {
		t.Error("xhtml should be HTML")
	}
	if IsHTML("text/csv") {
		t.Error("text/csv is not HTML")
	}
}

func TestIsBlockedMIME(t *testing.T) {
	for _, m := range []string{"image/png", "audio/mpeg", "video/mp4", "IMAGE/JPEG"} {
		if !IsBlockedMIME(m) {
			t.Errorf("IsBlockedMIME(%q) = false, want true", m)
		}
	}
	for _, m := range []string{"text/html", "application/pdf", "text/csv"} {
		if IsBlockedMIME(m) {
			t.Errorf("IsBlockedMIME(%q) = true, want false", m)
		}
	}
}

func TestHasBlockedExtension(t *testing.T) {
	if !HasBlockedExtension("https://x.org/photo.JPG") {
		t.Error(".jpg must be blocked (case-insensitively)")
	}
	if HasBlockedExtension("https://x.org/report.pdf") {
		t.Error(".pdf must not be blocked")
	}
	if HasBlockedExtension("https://x.org/en/node/9961") {
		t.Error("extension-less URL must not be blocked")
	}
}

// Property: scope membership is invariant under adding/removing a www. prefix
// on the probe URL's host.
func TestScopeWWWInvarianceProperty(t *testing.T) {
	s, err := NewScope("https://stats.example.org/")
	if err != nil {
		t.Fatal(err)
	}
	f := func(label uint8, pathSeed uint16) bool {
		sub := subdomainFromSeed(label)
		probe := "https://" + sub + "stats.example.org/p" + itoa(int(pathSeed))
		probeWWW := "https://www." + sub + "stats.example.org/p" + itoa(int(pathSeed))
		return s.Contains(probe) == s.Contains(probeWWW)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Normalize is idempotent — normalizing an already-normalized URL
// (against no base) returns it unchanged.
func TestNormalizeIdempotentProperty(t *testing.T) {
	base, _ := url.Parse("https://www.example.org/")
	f := func(a, b uint16) bool {
		raw := "https://www.example.org/d" + itoa(int(a)) + "/f" + itoa(int(b)) + ".csv"
		once := Normalize(base, raw)
		if once == "" {
			return false
		}
		return Normalize(nil, once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func subdomainFromSeed(n uint8) string {
	if n%3 == 0 {
		return ""
	}
	return "s" + itoa(int(n)) + "."
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCanonicalMIME(t *testing.T) {
	if got := CanonicalMIME("  Application/PDF ; q=1 "); got != "application/pdf" {
		t.Errorf("CanonicalMIME = %q", got)
	}
}

func TestBlockedExtensionListSanity(t *testing.T) {
	for ext := range BlockedExtensions {
		if !strings.HasPrefix(ext, ".") {
			t.Errorf("blocklist entry %q must start with a dot", ext)
		}
		if ext != strings.ToLower(ext) {
			t.Errorf("blocklist entry %q must be lowercase", ext)
		}
	}
}
