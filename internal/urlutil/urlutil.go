// Package urlutil implements the URL scoping, normalization, and MIME-type
// rules of Section 2.2 of the paper. A URL belongs to the website rooted at r
// when its hostname (ignoring a leading "www.") is a subdomain of r's
// hostname; targets are identified by a user-defined MIME-type list, and
// multimedia content is excluded by MIME and extension blocklists.
package urlutil

import (
	"net/url"
	"path"
	"strings"
)

// Scope decides which URLs belong to the website being crawled, following
// the pragmatic boundary definition of Section 2.2: a URL is in scope when
// its hostname, after stripping a potential "www." prefix, equals the root
// hostname or is one of its subdomains.
type Scope struct {
	rootHost string // root hostname, lowercased, without "www."
}

// NewScope builds a Scope from the crawl root URL. It returns an error when
// the root is not an absolute http(s) URL with a hostname.
func NewScope(root string) (*Scope, error) {
	u, err := url.Parse(root)
	if err != nil {
		return nil, err
	}
	host := StripWWW(strings.ToLower(u.Hostname()))
	if host == "" {
		return nil, &ScopeError{Root: root}
	}
	return &Scope{rootHost: host}, nil
}

// ScopeError reports a root URL from which no scope could be derived.
type ScopeError struct{ Root string }

func (e *ScopeError) Error() string { return "urlutil: root URL has no hostname: " + e.Root }

// RootHost returns the normalized root hostname of the scope.
func (s *Scope) RootHost() string { return s.rootHost }

// Contains reports whether raw is part of the same website as the root.
// Invalid URLs and non-http(s) schemes are out of scope.
func (s *Scope) Contains(raw string) bool {
	u, err := url.Parse(raw)
	if err != nil {
		return false
	}
	if u.Scheme != "" && u.Scheme != "http" && u.Scheme != "https" {
		return false
	}
	host := StripWWW(strings.ToLower(u.Hostname()))
	if host == "" {
		return false
	}
	if host == s.rootHost {
		return true
	}
	return strings.HasSuffix(host, "."+s.rootHost)
}

// StripWWW removes a single leading "www." label from a hostname, the
// special-case of Section 2.2 (many, but not all, sites prefix their web
// server's domain name with it).
func StripWWW(host string) string {
	return strings.TrimPrefix(host, "www.")
}

// Normalize canonicalizes a possibly relative URL against base: resolves the
// reference, lowercases scheme and host, strips fragments, and removes
// default ports. It returns the empty string for unusable URLs (javascript:,
// mailto:, data:, malformed).
func Normalize(base *url.URL, ref string) string {
	ref = strings.TrimSpace(ref)
	if ref == "" {
		return ""
	}
	u, err := url.Parse(ref)
	if err != nil {
		return ""
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	switch u.Scheme {
	case "http", "https":
	default:
		return ""
	}
	u.Fragment = ""
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	if h, p, ok := strings.Cut(u.Host, ":"); ok {
		if (u.Scheme == "http" && p == "80") || (u.Scheme == "https" && p == "443") {
			u.Host = h
		}
	}
	if u.Path == "" {
		u.Path = "/"
	}
	return u.String()
}

// Extension returns the lowercased file extension of the URL path, including
// the leading dot, or "" when the path has none. Query strings and fragments
// are ignored, matching how the extension blocklist of Section 3.4 is applied.
func Extension(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	ext := path.Ext(u.Path)
	if ext == "." {
		return ""
	}
	return strings.ToLower(ext)
}

// Depth returns the number of non-empty path segments of the URL, a cheap
// approximation of page depth used as a feature by the FOCUSED baseline.
func Depth(raw string) int {
	u, err := url.Parse(raw)
	if err != nil {
		return 0
	}
	n := 0
	for _, seg := range strings.Split(u.Path, "/") {
		if seg != "" {
			n++
		}
	}
	return n
}
