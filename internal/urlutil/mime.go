package urlutil

import "strings"

// DefaultTargetMIMEs is the full list of 38 MIME types that identify targets
// (statistics-dataset files) in the paper's implementation, reproduced from
// Appendix A.2 of the extended version.
var DefaultTargetMIMEs = []string{
	"application/csv",
	"application/json",
	"application/msword",
	"application/octet-stream",
	"application/pdf",
	"application/rdf+xml",
	"application/rss+xml",
	"application/vnd.ms-excel",
	"application/vnd.ms-excel.sheet.macroenabled.12",
	"application/vnd.oasis.opendocument.presentation",
	"application/vnd.oasis.opendocument.spreadsheet",
	"application/vnd.oasis.opendocument.text",
	"application/vnd.openxmlformats-officedocument.presentationml.presentation",
	"application/vnd.openxmlformats-officedocument.spreadsheetml.sheet",
	"application/vnd.openxmlformats-officedocument.wordprocessingml.document",
	"application/vnd.openxmlformats-officedocument.wordprocessingml.template",
	"application/vnd.rar",
	"application/x-7z-compressed",
	"application/x-csv",
	"application/x-gtar",
	"application/x-gzip",
	"application/xml",
	"application/x-pdf",
	"application/x-rar-compressed",
	"application/x-tar",
	"application/x-yaml",
	"application/x-zip-compressed",
	"application/yaml",
	"application/zip",
	"application/zip-compressed",
	"text/comma-separated-values",
	"text/csv",
	"text/json",
	"text/plain",
	"text/x-comma-separated-values",
	"text/x-csv",
	"text/x-yaml",
	"text/yaml",
}

// MIMESet is a set of canonical MIME types. Lookups ignore parameters such
// as "; charset=utf-8" and are case-insensitive.
type MIMESet map[string]struct{}

// NewMIMESet builds a MIMESet from a list of MIME types.
func NewMIMESet(types []string) MIMESet {
	s := make(MIMESet, len(types))
	for _, t := range types {
		s[CanonicalMIME(t)] = struct{}{}
	}
	return s
}

// DefaultTargetSet returns the MIMESet of DefaultTargetMIMEs.
func DefaultTargetSet() MIMESet { return NewMIMESet(DefaultTargetMIMEs) }

// Contains reports whether the (possibly parameterized) MIME type belongs to
// the set.
func (s MIMESet) Contains(mime string) bool {
	_, ok := s[CanonicalMIME(mime)]
	return ok
}

// CanonicalMIME lowercases a MIME type and strips parameters.
func CanonicalMIME(mime string) string {
	if i := strings.IndexByte(mime, ';'); i >= 0 {
		mime = mime[:i]
	}
	return strings.ToLower(strings.TrimSpace(mime))
}

// IsHTML reports whether the MIME type designates an HTML page, per
// Algorithm 4's `"HTML" ⊂ mime_type` test.
func IsHTML(mime string) bool {
	m := CanonicalMIME(mime)
	return m == "text/html" || m == "application/xhtml+xml"
}

// IsBlockedMIME reports whether the MIME type falls in the multimedia
// blocklist used by the experiments (image/*, audio/*, video/*); downloads
// of such responses are interrupted (Sec. 3.4).
func IsBlockedMIME(mime string) bool {
	m := CanonicalMIME(mime)
	return strings.HasPrefix(m, "image/") ||
		strings.HasPrefix(m, "audio/") ||
		strings.HasPrefix(m, "video/")
}

// BlockedExtensions is the multimedia URL-extension blocklist from Appendix
// B.3 of the extended version. Links whose URL extension appears here are
// never classified nor enqueued.
var BlockedExtensions = map[string]struct{}{
	".3g2": {}, ".3ga": {}, ".3gp2": {}, ".3gp": {}, ".3gpa": {}, ".3gpp2": {},
	".3gpp": {}, ".aac": {}, ".aacp": {}, ".adp": {}, ".aff": {}, ".aif": {},
	".aiff": {}, ".arw": {}, ".asf": {}, ".asx": {}, ".avi": {}, ".avif": {},
	".avifs": {}, ".bmp": {}, ".btif": {}, ".cgm": {}, ".cmx": {}, ".cr2": {},
	".crw": {}, ".dcr": {}, ".djv": {}, ".djvu": {}, ".dng": {}, ".dts": {},
	".dtshd": {}, ".dwg": {}, ".dxf": {}, ".ecelp4800": {}, ".ecelp7470": {},
	".ecelp9600": {}, ".eol": {}, ".erf": {}, ".f4v": {}, ".fbs": {}, ".fh4": {},
	".fh5": {}, ".fh7": {}, ".fh": {}, ".fhc": {}, ".flac": {}, ".fli": {},
	".flv": {}, ".fpx": {}, ".fst": {}, ".fvt": {}, ".g3": {}, ".gif": {},
	".h261": {}, ".h263": {}, ".h264": {}, ".heic": {}, ".heif": {}, ".icns": {},
	".ico": {}, ".ief": {}, ".jfi": {}, ".jfif-tbnl": {}, ".jfif": {}, ".jif": {},
	".jpe": {}, ".jpeg": {}, ".jpg": {}, ".jpgm": {}, ".jpgv": {}, ".jpm": {},
	".k25": {}, ".kar": {}, ".kdc": {}, ".lvp": {}, ".m1v": {}, ".m2a": {},
	".m2v": {}, ".m3a": {}, ".m3u": {}, ".m4a": {}, ".m4b": {}, ".m4p": {},
	".m4r": {}, ".m4u": {}, ".m4v": {}, ".mdi": {}, ".mid": {}, ".midi": {},
	".mj2": {}, ".mjp2": {}, ".mka": {}, ".mkv": {}, ".mmr": {}, ".mov": {},
	".movie": {}, ".mp2": {}, ".mp2a": {}, ".mp3": {}, ".mp4": {}, ".mp4v": {},
	".mpa": {}, ".mpe": {}, ".mpeg": {}, ".mpg4": {}, ".mpg": {}, ".mpga": {},
	".mrw": {}, ".mxu": {}, ".nef": {}, ".npx": {}, ".oga": {}, ".ogg": {},
	".ogv": {}, ".opus": {}, ".orf": {}, ".pbm": {}, ".pct": {}, ".pcx": {},
	".pef": {}, ".pgm": {}, ".pic": {}, ".pjpg": {}, ".png": {}, ".pnm": {},
	".ppm": {}, ".psd": {}, ".ptx": {}, ".pya": {}, ".pyv": {}, ".qt": {},
	".ra": {}, ".raf": {}, ".ram": {}, ".ras": {}, ".raw": {}, ".rgb": {},
	".rlc": {}, ".rmi": {}, ".rmp": {}, ".rw2": {}, ".rwl": {}, ".snd": {},
	".spx": {}, ".sr2": {}, ".srf": {}, ".svg": {}, ".svgz": {}, ".tif": {},
	".tiff": {}, ".ts": {}, ".viv": {}, ".wav": {}, ".wax": {}, ".wbmp": {},
	".weba": {}, ".webm": {}, ".webp": {}, ".wm": {}, ".wma": {}, ".wmv": {},
	".wmx": {}, ".wvx": {}, ".x3f": {}, ".xbm": {}, ".xif": {}, ".xpm": {},
	".xwd": {},
}

// HasBlockedExtension reports whether the URL's extension is on the
// multimedia blocklist.
func HasBlockedExtension(raw string) bool {
	_, ok := BlockedExtensions[Extension(raw)]
	return ok
}
