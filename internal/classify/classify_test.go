package classify

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sbcrawl/internal/learn"
)

// fakeSite maps URL shapes to true classes: /page/... is HTML, /data/...csv
// is a target, /broken/... is Neither.
func fakeTruth(url string) int {
	switch {
	case strings.Contains(url, "/data/"):
		return ClassTarget
	case strings.Contains(url, "/broken/"):
		return ClassNeither
	default:
		return ClassHTML
	}
}

func htmlURL(i int) string { return fmt.Sprintf("https://x.org/page/topic-%d", i) }
func dataURL(i int) string { return fmt.Sprintf("https://x.org/data/file-%d.csv", i) }

func TestInitialPhaseUsesHead(t *testing.T) {
	heads := 0
	o := NewOnline(Config{
		BatchSize: 6,
		Head: func(url string) int {
			heads++
			return fakeTruth(url)
		},
	})
	// First b classifications are HEAD-labeled and return the true class.
	for i := 0; i < 3; i++ {
		c, usedHead := o.Classify(LinkContext{URL: htmlURL(i)})
		if !usedHead || c != ClassHTML {
			t.Fatalf("initial classify #%d: class=%d usedHead=%v", i, c, usedHead)
		}
		c, usedHead = o.Classify(LinkContext{URL: dataURL(i)})
		if !usedHead || c != ClassTarget {
			t.Fatalf("initial classify target #%d: class=%d usedHead=%v", i, c, usedHead)
		}
	}
	if heads != 6 {
		t.Errorf("HEAD requests = %d, want 6", heads)
	}
	if o.InInitialPhase() {
		t.Error("after b labeled examples the initial phase must end")
	}
	// Subsequent classifications are free.
	_, usedHead := o.Classify(LinkContext{URL: dataURL(99)})
	if usedHead {
		t.Error("post-initial classification must not spend HEAD requests")
	}
	if heads != 6 {
		t.Errorf("HEAD count grew to %d after initial phase", heads)
	}
}

func TestNeitherHeadsRouteToHTMLAndSkipTraining(t *testing.T) {
	o := NewOnline(Config{
		BatchSize: 4,
		Head:      func(url string) int { return fakeTruth(url) },
	})
	c, usedHead := o.Classify(LinkContext{URL: "https://x.org/broken/1"})
	if !usedHead || c != ClassHTML {
		t.Errorf("Neither must classify as HTML in initial phase, got %d", c)
	}
	if len(o.batch) != 0 {
		t.Error("Neither URLs must not enter the training batch")
	}
}

func TestOnlineLearningFromObservations(t *testing.T) {
	o := NewOnline(Config{
		BatchSize: 8,
		Head:      func(url string) int { return fakeTruth(url) },
	})
	// Bootstrap via initial phase.
	for i := 0; i < 4; i++ {
		o.Classify(LinkContext{URL: htmlURL(i)})
		o.Classify(LinkContext{URL: dataURL(i)})
	}
	// Keep training via free observations from GETs.
	for i := 10; i < 40; i++ {
		o.Classify(LinkContext{URL: htmlURL(i)})
		o.Observe(htmlURL(i), ClassHTML)
		o.Classify(LinkContext{URL: dataURL(i)})
		o.Observe(dataURL(i), ClassTarget)
	}
	// The trained model must now separate the two URL families.
	correct := 0
	for i := 100; i < 120; i++ {
		if c, _ := o.Classify(LinkContext{URL: htmlURL(i)}); c == ClassHTML {
			correct++
		}
		if c, _ := o.Classify(LinkContext{URL: dataURL(i)}); c == ClassTarget {
			correct++
		}
	}
	if correct < 36 {
		t.Errorf("trained classifier got %d/40 on held-out URLs", correct)
	}
}

func TestConfusionMatrixAccumulates(t *testing.T) {
	o := NewOnline(Config{
		BatchSize: 4,
		Head:      func(url string) int { return fakeTruth(url) },
	})
	for i := 0; i < 2; i++ {
		o.Classify(LinkContext{URL: htmlURL(i)})
		o.Classify(LinkContext{URL: dataURL(i)})
	}
	// Now classify + observe some URLs; all predictions land in the matrix.
	for i := 10; i < 20; i++ {
		o.Classify(LinkContext{URL: htmlURL(i)})
		o.Observe(htmlURL(i), ClassHTML)
	}
	conf := o.Confusion()
	if conf.Total() != 10 {
		t.Errorf("confusion total = %d, want 10 scored predictions", conf.Total())
	}
	// Predicted-Neither column must be structurally zero.
	for tr := 0; tr < 3; tr++ {
		if conf.Counts[tr][ClassNeither] != 0 {
			t.Error("classifier must never predict Neither")
		}
	}
}

func TestObserveWithoutClassifyStillTrains(t *testing.T) {
	o := NewOnline(Config{BatchSize: 2, Head: func(string) int { return ClassHTML }})
	o.Observe(dataURL(1), ClassTarget)
	o.Observe(dataURL(2), ClassTarget)
	if len(o.batch) != 0 {
		t.Error("batch must flush at size b")
	}
	if !o.trained {
		t.Error("model must have been trained")
	}
}

func TestURLContentFeaturesIncludeContext(t *testing.T) {
	link := LinkContext{
		URL:             "https://x.org/p",
		AnchorText:      "download dataset",
		TagPath:         "html body ul.datasets li a",
		SurroundingText: "annual statistics",
	}
	urlOnly := Features(URLOnly, link)
	urlCont := Features(URLContent, link)
	if len(urlCont) <= len(urlOnly) {
		t.Error("URL_CONT must add features beyond URL_ONLY")
	}
	if URLOnly.String() != "URL_ONLY" || URLContent.String() != "URL_CONT" {
		t.Error("feature set names must match the paper")
	}
}

func TestOracle(t *testing.T) {
	o := &Oracle{Truth: fakeTruth}
	if c, usedHead := o.Classify(LinkContext{URL: dataURL(1)}); c != ClassTarget || usedHead {
		t.Errorf("oracle target: %d %v", c, usedHead)
	}
	if c, _ := o.Classify(LinkContext{URL: htmlURL(1)}); c != ClassHTML {
		t.Errorf("oracle html: %d", c)
	}
	if c, _ := o.Classify(LinkContext{URL: "https://x.org/broken/1"}); c != ClassHTML {
		t.Errorf("oracle must route Neither to HTML, got %d", c)
	}
	o.Observe("x", ClassHTML) // must not panic
}

func TestConfusionMetrics(t *testing.T) {
	c := NewConfusion()
	// 60 correct HTML, 2 HTML→Target, 30 correct Target, 1 Target→HTML,
	// 7 Neither→HTML.
	for i := 0; i < 60; i++ {
		c.Record(ClassHTML, ClassHTML)
	}
	for i := 0; i < 2; i++ {
		c.Record(ClassHTML, ClassTarget)
	}
	for i := 0; i < 30; i++ {
		c.Record(ClassTarget, ClassTarget)
	}
	c.Record(ClassTarget, ClassHTML)
	for i := 0; i < 7; i++ {
		c.Record(ClassNeither, ClassHTML)
	}
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	pct := c.Percent()
	if math.Abs(pct[ClassHTML][ClassHTML]-60) > 1e-9 {
		t.Errorf("pct[H][H] = %v", pct[ClassHTML][ClassHTML])
	}
	// MR = (2+1) / (60+2+30+1) × 100 ≈ 3.23 (Neither rows excluded).
	want := 100 * 3.0 / 93.0
	if got := c.MisclassificationRate(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MR = %v, want %v", got, want)
	}
	s := c.String()
	if !strings.Contains(s, "Neither") {
		t.Error("String must render all classes")
	}
}

func TestConfusionMerge(t *testing.T) {
	a, b := NewConfusion(), NewConfusion()
	a.Record(ClassHTML, ClassHTML)
	b.Record(ClassTarget, ClassHTML)
	a.Merge(b)
	if a.Total() != 2 || a.Counts[ClassTarget][ClassHTML] != 1 {
		t.Errorf("merge result %+v", a.Counts)
	}
}

func TestConfusionIgnoresOutOfRange(t *testing.T) {
	c := NewConfusion()
	c.Record(-1, 0)
	c.Record(0, 9)
	if c.Total() != 0 {
		t.Error("out-of-range records must be dropped")
	}
}

func TestCustomModelIsUsed(t *testing.T) {
	for _, name := range learn.ModelNames {
		o := NewOnline(Config{
			Model:     learn.NewModel(name),
			BatchSize: 4,
			Head:      func(url string) int { return fakeTruth(url) },
		})
		for i := 0; i < 2; i++ {
			o.Classify(LinkContext{URL: htmlURL(i)})
			o.Classify(LinkContext{URL: dataURL(i)})
		}
		if o.InInitialPhase() {
			t.Errorf("%s: initial phase should end after batch", name)
		}
	}
}
