package classify

import (
	"fmt"
	"strings"
)

// Confusion is a 3×3 confusion matrix over (true class, predicted class).
// The predicted-Neither column is structurally zero: the classifier never
// predicts it (Tables 8–16 all show a zero third column).
type Confusion struct {
	// Counts[t][p] counts URLs of true class t predicted as p.
	Counts [3][3]int
}

// NewConfusion returns an empty matrix.
func NewConfusion() *Confusion { return &Confusion{} }

// Record adds one observation.
func (c *Confusion) Record(trueClass, predClass int) {
	if trueClass < 0 || trueClass > 2 || predClass < 0 || predClass > 2 {
		return
	}
	c.Counts[trueClass][predClass]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Percent returns the matrix normalized to percentages of the total, the
// presentation of Tables 8–16.
func (c *Confusion) Percent() [3][3]float64 {
	var out [3][3]float64
	total := float64(c.Total())
	if total == 0 {
		return out
	}
	for t := range c.Counts {
		for p := range c.Counts[t] {
			out[t][p] = 100 * float64(c.Counts[t][p]) / total
		}
	}
	return out
}

// MisclassificationRate is the "MR" column of Table 5: the share of
// HTML-true and Target-true URLs that were predicted wrongly, in percent.
// Neither-true rows are excluded — the classifier cannot be right on them
// by design.
func (c *Confusion) MisclassificationRate() float64 {
	var wrong, total int
	for _, t := range []int{ClassHTML, ClassTarget} {
		for p := 0; p < 3; p++ {
			total += c.Counts[t][p]
			if p != t {
				wrong += c.Counts[t][p]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(wrong) / float64(total)
}

// Merge adds another matrix into this one (inter-site averaging).
func (c *Confusion) Merge(other *Confusion) {
	for t := range c.Counts {
		for p := range c.Counts[t] {
			c.Counts[t][p] += other.Counts[t][p]
		}
	}
}

// String renders the matrix in the paper's table layout.
func (c *Confusion) String() string {
	pct := c.Percent()
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "True\\Pred", "HTML(%)", "Target(%)", "Neither(%)")
	names := []string{"HTML", "Target", "Neither"}
	for t, name := range names {
		fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f\n", name, pct[t][0], pct[t][1], pct[t][2])
	}
	return b.String()
}
