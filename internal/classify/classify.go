// Package classify implements the online URL classifier of Algorithm 2: a
// lightweight model over character-bigram URL features that predicts whether
// a hyperlink leads to an HTML page or a target, trained first from a batch
// of HTTP HEAD requests and then online, for free, from every GET response.
// It also provides the perfect oracle used by SB-ORACLE and the confusion
// matrices of Tables 8–16.
package classify

import (
	"sbcrawl/internal/learn"
	"sbcrawl/internal/textvec"
)

// URL classes. HTML and Target are the two trained classes; Neither exists
// only as ground truth (4xx/5xx and non-target MIME types) — the classifier
// deliberately never predicts it (Sec. 3.3's misclassification-cost
// argument).
const (
	ClassHTML    = learn.ClassHTML
	ClassTarget  = learn.ClassTarget
	ClassNeither = 2
)

// ClassName returns the display name of a class.
func ClassName(c int) string {
	switch c {
	case ClassHTML:
		return "HTML"
	case ClassTarget:
		return "Target"
	case ClassNeither:
		return "Neither"
	}
	return "?"
}

// LinkContext carries everything known about a hyperlink at discovery time.
// URL_ONLY features use just the URL; URL_CONT adds anchor text, DOM path,
// and surrounding text (Table 5).
type LinkContext struct {
	URL             string
	AnchorText      string
	TagPath         string
	SurroundingText string
}

// FeatureSet selects the classifier's input representation.
type FeatureSet int

// Feature sets of Table 5.
const (
	URLOnly FeatureSet = iota
	URLContent
)

// String names the feature set as the paper does.
func (f FeatureSet) String() string {
	if f == URLContent {
		return "URL_CONT"
	}
	return "URL_ONLY"
}

// Features vectorizes a link for the given feature set. Feature blocks are
// offset so URL, anchor, path, and context bigrams do not collide.
func Features(set FeatureSet, link LinkContext) textvec.Sparse {
	x := textvec.CharBigrams(link.URL)
	if set == URLContent {
		x.Add(textvec.CharBigrams(link.AnchorText), 1*textvec.CharBigramDim)
		x.Add(textvec.CharBigrams(link.TagPath), 2*textvec.CharBigramDim)
		x.Add(textvec.CharBigrams(link.SurroundingText), 3*textvec.CharBigramDim)
	}
	return x
}

// Classifier is what the crawl engine consults for every discovered link.
type Classifier interface {
	// Classify predicts the link's class (ClassHTML or ClassTarget) and
	// reports whether an HTTP HEAD request was spent doing so (the initial
	// training phase of Algorithm 2).
	Classify(link LinkContext) (class int, usedHead bool)
	// Observe feeds the true class of a URL once a GET response reveals
	// it; Neither observations update diagnostics but never the model.
	Observe(url string, trueClass int)
}

// HeadFunc performs an HTTP HEAD on a URL and maps the response to a true
// class. The crawl engine provides it, charging the request to its budget.
type HeadFunc func(url string) int

// Config parameterizes the online classifier.
type Config struct {
	// Model is the learner; nil defaults to logistic regression, the
	// paper's URL_ONLY-LR choice.
	Model learn.Model
	// BatchSize is b of Algorithm 2 (paper default 10).
	BatchSize int
	// Features selects URL_ONLY or URL_CONT.
	Features FeatureSet
	// Head labels URLs during the initial training phase.
	Head HeadFunc
}

// Online is the classifier of Algorithm 2.
type Online struct {
	cfg     Config
	model   learn.Model
	batch   []learn.Example
	initial bool
	trained bool
	pending map[string]pendingPrediction
	conf    *Confusion
}

type pendingPrediction struct {
	x    textvec.Sparse
	pred int
}

// NewOnline builds the classifier.
func NewOnline(cfg Config) *Online {
	if cfg.Model == nil {
		cfg.Model = learn.NewLogisticRegression()
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 10
	}
	return &Online{
		cfg:     cfg,
		model:   cfg.Model,
		initial: true,
		pending: make(map[string]pendingPrediction),
		conf:    NewConfusion(),
	}
}

// Classify implements Classifier. During the initial training phase it
// spends a HEAD request per URL and returns the measured class; afterwards
// it predicts from features alone at zero HTTP cost.
func (o *Online) Classify(link LinkContext) (int, bool) {
	x := Features(o.cfg.Features, link)
	if o.initial && o.cfg.Head != nil {
		true3 := o.cfg.Head(link.URL)
		if true3 == ClassHTML || true3 == ClassTarget {
			o.addExample(learn.Example{X: x, Y: true3})
		}
		// A "Neither" HEAD (errors) is routed to the frontier-class so the
		// crawler just wastes one later request — the cheap error kind.
		pred := true3
		if pred == ClassNeither {
			pred = ClassHTML
		}
		return pred, true
	}
	pred := o.model.Predict(x)
	o.pending[link.URL] = pendingPrediction{x: x, pred: pred}
	return pred, false
}

// Observe implements Classifier: every GET response contributes an annotated
// (URL, class) pair at no extra HTTP cost, and predictions are scored into
// the confusion matrix once the truth is known.
func (o *Online) Observe(url string, trueClass int) {
	p, had := o.pending[url]
	if had {
		delete(o.pending, url)
		o.conf.Record(trueClass, p.pred)
	}
	if trueClass != ClassHTML && trueClass != ClassTarget {
		return // Neither is never trained on (two-class design)
	}
	x := p.x
	if !had {
		x = Features(o.cfg.Features, LinkContext{URL: url})
	}
	o.addExample(learn.Example{X: x, Y: trueClass})
}

func (o *Online) addExample(ex learn.Example) {
	o.batch = append(o.batch, ex)
	if len(o.batch) >= o.cfg.BatchSize {
		o.model.PartialFit(o.batch)
		o.batch = o.batch[:0]
		o.trained = true
		o.initial = false
	}
}

// InInitialPhase reports whether HEAD labeling is still active.
func (o *Online) InInitialPhase() bool { return o.initial }

// Confusion returns the accumulated confusion matrix.
func (o *Online) Confusion() *Confusion { return o.conf }

// Oracle is the perfect URL classifier of SB-ORACLE: it knows every URL's
// true class and costs nothing. Truth returns ClassHTML, ClassTarget, or
// ClassNeither.
type Oracle struct {
	Truth func(url string) int
}

// Classify implements Classifier. Neither URLs are reported as HTML so the
// oracle crawler still skips them the moment they 404 — matching the
// paper's SB-ORACLE, which is an oracle for HTML/Target separation.
func (o *Oracle) Classify(link LinkContext) (int, bool) {
	c := o.Truth(link.URL)
	if c == ClassNeither {
		c = ClassHTML
	}
	return c, false
}

// Observe implements Classifier (the oracle has nothing to learn).
func (o *Oracle) Observe(string, int) {}
