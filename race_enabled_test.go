//go:build race

package sbcrawl

// raceEnabled reports whether this test binary was built with -race, so
// wall-clock timing assertions can stand down (the detector's overhead is
// not evenly distributed across goroutines).
const raceEnabled = true
