package sbcrawl

import (
	"fmt"
	"testing"
)

// BenchmarkResilience measures crawl throughput under injected transient
// faults with the retry/backoff layer armed, at fault rates 0/1%/5%/20%.
// This is the workload behind BENCH_resilience.json
// (`scripts/bench.sh resilience`): the req/s trajectory shows what fault
// recovery costs — each recovered fault is an extra backend round trip plus
// a (virtually charged) backoff — while the reported counters split the
// retry traffic into recovered, exhausted, and failed requests. At every
// rate the crawl's Result stays byte-identical to the fault-free run (see
// TestRetryConvergence); only the cost moves.
func BenchmarkResilience(b *testing.B) {
	site, err := GenerateSite("cn", 0.05, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, rate := range []float64{0, 0.01, 0.05, 0.20} {
		rate := rate
		b.Run(fmt.Sprintf("faults=%g%%", 100*rate), func(b *testing.B) {
			cfg := Config{
				Strategy:  StrategyBFS,
				Seed:      2,
				FaultRate: rate,
				FaultSeed: 42,
			}
			var requests int
			var retries, recovered, exhausted, failed float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := CrawlSite(site, cfg)
				if err != nil {
					b.Fatal(err)
				}
				requests = res.Requests
				if res.Faults != nil {
					retries += float64(res.Faults.Retries)
					recovered += float64(res.Faults.RetrySuccesses)
					exhausted += float64(res.Faults.Exhausted)
					failed += float64(res.Faults.FailedRequests)
				}
			}
			b.StopTimer()
			n := float64(b.N)
			perSec := float64(requests) * n / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "req/s")
			b.ReportMetric(retries/n, "retries/crawl")
			b.ReportMetric(recovered/n, "recovered/crawl")
			b.ReportMetric(exhausted/n, "exhausted/crawl")
			b.ReportMetric(failed/n, "failed/crawl")
		})
	}
}
