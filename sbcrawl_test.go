package sbcrawl

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGenerateSiteAndCrawlSite(t *testing.T) {
	site, err := GenerateSite("cl", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if site.Code() != "cl" || site.Name() == "" {
		t.Errorf("site identity: %q %q", site.Code(), site.Name())
	}
	if site.TargetCount() == 0 || site.PageCount() == 0 {
		t.Fatal("empty site generated")
	}
	res, err := CrawlSite(site, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "SB-CLASSIFIER" {
		t.Errorf("default strategy = %q", res.Strategy)
	}
	if len(res.Targets) != site.TargetCount() {
		t.Errorf("unbounded crawl found %d/%d targets", len(res.Targets), site.TargetCount())
	}
	if len(res.Curve) == 0 {
		t.Error("result must carry a progress curve")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Requests != res.Requests || last.Targets != len(res.Targets) {
		t.Errorf("curve end %+v inconsistent with result %d/%d",
			last, res.Requests, len(res.Targets))
	}
}

func TestAllStrategiesOnSimulatedSite(t *testing.T) {
	site, err := GenerateSite("cn", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{
		StrategySB, StrategySBOracle, StrategyBFS, StrategyDFS, StrategyRandom,
		StrategyFocused, StrategyTPOff, StrategyTRES, StrategyOmniscient,
	} {
		res, err := CrawlSite(site, Config{Strategy: s, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Requests == 0 {
			t.Errorf("%s: no requests", s)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	site, _ := GenerateSite("cl", 0.01, 1)
	if _, err := CrawlSite(site, Config{Strategy: "quantum"}); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestUnknownSiteCode(t *testing.T) {
	if _, err := GenerateSite("zz", 0.01, 1); err == nil {
		t.Error("unknown site code must error")
	}
}

func TestSiteCodes(t *testing.T) {
	codes := SiteCodes()
	if len(codes) != 18 {
		t.Errorf("SiteCodes has %d entries, want 18", len(codes))
	}
}

func TestCrawlRequiresRoot(t *testing.T) {
	if _, err := Crawl(Config{}); err == nil {
		t.Error("Crawl without Root must error")
	}
}

func TestCrawlRejectsOracleStrategies(t *testing.T) {
	for _, s := range []Strategy{StrategySBOracle, StrategyTPOff, StrategyTRES, StrategyOmniscient} {
		if _, err := Crawl(Config{Root: "https://x.org/", Strategy: s}); err == nil {
			t.Errorf("live Crawl must reject oracle strategy %s", s)
		}
	}
}

func TestCrawlOverLiveHTTP(t *testing.T) {
	// The full production path: a generated site served over a real socket,
	// crawled with the HTTP fetcher (politeness shrunk for the test).
	site, err := GenerateSite("cl", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(site.Handler())
	defer ts.Close()

	res, err := Crawl(Config{
		Root:        ts.URL + "/",
		MaxRequests: 2000,
		Politeness:  time.Microsecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) == 0 {
		t.Fatal("live crawl found no targets")
	}
	// A decent share of the site's targets should be retrieved within the
	// budget; recall depends on the politeness-free test budget.
	if len(res.Targets) < site.TargetCount()/2 {
		t.Errorf("live crawl found %d/%d targets", len(res.Targets), site.TargetCount())
	}
	for _, u := range res.Targets {
		if !strings.HasPrefix(u, "http://127.0.0.1") {
			t.Errorf("target URL %q not from the test server", u)
		}
	}
}

func TestCustomTargetMIMEs(t *testing.T) {
	// Generality claim of Sec. 2.2: any MIME set defines the targets.
	site, err := GenerateSite("be", 0.01, 9)
	if err != nil {
		t.Fatal(err)
	}
	all, err := CrawlSite(site, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	csvOnly, err := CrawlSite(site, Config{Seed: 3, TargetMIMEs: []string{"text/csv"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(csvOnly.Targets) == 0 {
		t.Fatal("no CSV targets found")
	}
	if len(csvOnly.Targets) >= len(all.Targets) {
		t.Errorf("CSV-only crawl returned %d targets, full set %d",
			len(csvOnly.Targets), len(all.Targets))
	}
	for _, u := range csvOnly.Targets {
		if !strings.Contains(u, ".csv") && !strings.Contains(u, "/node/") && !strings.Contains(u, "/download/") {
			t.Errorf("non-CSV-looking target %q", u)
		}
	}
}

func TestEarlyStopOption(t *testing.T) {
	site, err := GenerateSite("ok", 0.002, 11)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CrawlSite(site, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stopped, err := CrawlSite(site, Config{Seed: 1, EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Requests > full.Requests {
		t.Errorf("early-stop run used more requests (%d) than full (%d)",
			stopped.Requests, full.Requests)
	}
}

func TestBudgetedCrawl(t *testing.T) {
	site, err := GenerateSite("nc", 0.005, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrawlSite(site, Config{MaxRequests: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests > 50 {
		t.Errorf("budget violated: %d requests", res.Requests)
	}
}
