# Developer and CI entry points. `make ci` is the tier-1 verification gate:
# vet, the full test suite, and the same suite under the race detector
# (the fleet orchestrator runs crawls concurrently — race-clean is a hard
# requirement, see ROADMAP.md).

GO ?= go

.PHONY: ci build vet test race bench bench-run bench-store bench-codec bench-serve bench-fabric fleet-bench pipeline-bench speculation-bench

ci: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Record the perf trajectory: full benchmark suite → BENCH_engine.json.
bench:
	sh scripts/bench.sh

# Run the benchmarks without recording (quick local look).
bench-run:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# The sequential-vs-parallel fleet speedup tracked in the perf trajectory.
fleet-bench:
	$(GO) test -run '^$$' -bench BenchmarkFleetParallel -benchtime 3x .

# The sequential-vs-pipelined single-site speedup (Config.Prefetch).
pipeline-bench:
	$(GO) test -run '^$$' -bench BenchmarkPrefetchPipeline -benchtime 3x .

# The adaptive speculation subsystem: self-tuning window vs the best fixed
# width, and the fleet-shared speculation cache vs independent crawls.
speculation-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkAdaptivePrefetch|BenchmarkFleetSharedCache' -benchtime 3x .

# The persistent crawl store: segment-log round trip, snapshot compaction,
# and resume (index rebuild) overhead → BENCH_store.json.
bench-store:
	sh scripts/bench.sh store

# The binary codec against the retained gob baseline (same recording as
# bench-store: codec and segment log are one persistence plane).
bench-codec:
	sh scripts/bench.sh codec

# The crawld daemon: >= 1k concurrent sessions over the HTTP API, with
# attach/step latency percentiles → BENCH_serve.json.
bench-serve:
	sh scripts/bench.sh serve

# The partitioned intra-crawl fabric: one latency-bound multi-host crawl at
# partitions 1/2/4/8, with exchange counters → BENCH_fabric.json.
bench-fabric:
	sh scripts/bench.sh fabric
