package sbcrawl

// ISSUE 9 headline gates: the retry/backoff/breaker layer must make
// transient faults invisible. A crawl under seeded injected faults with
// retries enabled converges to the byte-identical Result of the fault-free
// crawl — for all 9 strategies, sequential and partitioned — and kill+resume
// under faults stays deterministic. The breaker gate shows the other side:
// a permanently dead host is quarantined at bounded cost while the rest of
// the federation completes.

import (
	"reflect"
	"strings"
	"testing"
)

// stripFaults clears the fault diagnostics so faulted-crawl results can be
// compared to fault-free baselines (the crawl outcome must match byte for
// byte; retry counters legitimately differ).
func stripFaults(res *Result) *Result {
	res.Faults = nil
	return res
}

// TestRetryConvergence is the determinism gate: for every strategy, a crawl
// under >=5% transient faults with the retry layer on returns a Result
// byte-identical to the fault-free crawl, at partition counts 1 and 4.
// Every injected fault recovers within the retry budget, so retrying is a
// pure delay — never a behavior change.
func TestRetryConvergence(t *testing.T) {
	site, err := GenerateSite("cn", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	fed := federationSite(t)
	sawFaults := false
	for _, s := range allStrategies {
		s := s
		t.Run(string(s), func(t *testing.T) {
			// Single-host, sequential engine.
			cfg := Config{Strategy: s, Seed: 2}
			baseline, err := CrawlSite(site, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fcfg := cfg
			fcfg.FaultRate = 0.10
			fcfg.FaultSeed = 99
			faulted, err := CrawlSite(site, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			if faulted.Faults != nil && faulted.Faults.Retries > 0 {
				sawFaults = true
			}
			if faulted.Faults != nil && faulted.Faults.FailedRequests > 0 {
				t.Errorf("faults leaked past the retry budget: %+v", faulted.Faults)
			}
			if !reflect.DeepEqual(stripFaults(faulted), baseline) {
				t.Errorf("faulted crawl diverged from fault-free baseline:\nbase:    req=%d targets=%d\nfaulted: req=%d targets=%d",
					baseline.Requests, len(baseline.Targets), faulted.Requests, len(faulted.Targets))
			}

			// Multi-host, partitioned fabric: speculative partition fetches
			// burn fault attempts concurrently; the demand loop must still
			// converge to the same bytes.
			fedCfg := Config{Strategy: s, Seed: 3, MaxRequests: 150}
			fedBase, err := CrawlSite(fed, fedCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{1, 4} {
				pcfg := fedCfg
				pcfg.Partitions = parts
				pcfg.FaultRate = 0.10
				pcfg.FaultSeed = 99
				got, err := CrawlSite(fed, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				if got.Faults != nil && got.Faults.Retries > 0 {
					sawFaults = true
				}
				if !reflect.DeepEqual(stripFaults(stripFabric(got)), fedBase) {
					t.Errorf("partitions=%d: faulted crawl diverged from fault-free baseline:\nbase:    req=%d targets=%d\nfaulted: req=%d targets=%d",
						parts, fedBase.Requests, len(fedBase.Targets), got.Requests, len(got.Targets))
				}
			}
		})
	}
	if !sawFaults {
		t.Error("no strategy recorded any retry activity: the fault injector never fired and the gate proved nothing")
	}
}

// TestFaultResumeEquivalence kills a faulted crawl mid-flight into a fresh
// store and resumes it under the same fault schedule: the result must be
// byte-identical to a never-interrupted fault-free run. Only recovered
// (true) responses are durable, so resume replays truth and re-attempts the
// rest through fresh retry loops.
func TestFaultResumeEquivalence(t *testing.T) {
	site, err := GenerateSite("cn", 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyBFS, StrategySB, StrategyRandom} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			cfg := Config{Strategy: s, Seed: 2, FaultRate: 0.10, FaultSeed: 99}
			baseline, err := CrawlSite(site, Config{Strategy: s, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			killCfg := cfg
			killCfg.MaxRequests = 13
			killCfg.StorePath = dir
			if _, err := CrawlSite(site, killCfg); err != nil {
				t.Fatal(err)
			}
			resCfg := cfg
			resCfg.StorePath = dir
			resCfg.Resume = true
			resumed, err := CrawlSite(site, resCfg)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Store == nil || !resumed.Store.Resumed {
				t.Fatalf("resumed faulted crawl did not report a warm start: %+v", resumed.Store)
			}
			if resumed.Store.ReplayHits == 0 {
				t.Fatal("resumed faulted crawl replayed nothing from the store")
			}
			if !reflect.DeepEqual(stripFaults(stripStore(resumed)), baseline) {
				t.Errorf("resumed faulted crawl diverged from uninterrupted fault-free run:\nbase:   req=%d targets=%d\nresume: req=%d targets=%d",
					baseline.Requests, len(baseline.Targets), resumed.Requests, len(resumed.Targets))
			}
		})
	}
}

// TestFaultedStoreNeverSatisfiesFaultFreeResume pins the fingerprint
// satellite: fault knobs are part of the done-record key, so a completed
// faulted crawl must not short-circuit a fault-free Resume (and vice versa).
func TestFaultedStoreNeverSatisfiesFaultFreeResume(t *testing.T) {
	site, err := GenerateSite("cl", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{Strategy: StrategyBFS, Seed: 2, StorePath: dir, FaultRate: 0.10, FaultSeed: 7}
	if _, err := CrawlSite(site, cfg); err != nil {
		t.Fatal(err)
	}
	clean := Config{Strategy: StrategyBFS, Seed: 2, StorePath: dir, Resume: true}
	res, err := CrawlSite(site, clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store != nil && res.Store.Completed {
		t.Error("fault-free Resume was served by a faulted crawl's done-record")
	}
}

// TestBreakerDegradesGracefully is the graceful-degradation gate: one
// permanently dead host in an 8-host federation trips its breaker and is
// quarantined, the other seven hosts complete in full, and the quarantine is
// visible in Result.Faults.
func TestBreakerDegradesGracefully(t *testing.T) {
	codes := []string{"ce", "ab", "ju", "is", "cl", "cn", "in", "ok"}
	fed, err := GenerateFederation(codes, 0.005, 7)
	if err != nil {
		t.Fatal(err)
	}
	const dead = "s3.federation.test"
	baseline, err := CrawlSite(fed, Config{Strategy: StrategyBFS, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	liveTargets := 0
	for _, u := range baseline.Targets {
		if !strings.Contains(u, dead) {
			liveTargets++
		}
	}
	deadTargets := len(baseline.Targets) - liveTargets
	if deadTargets == 0 {
		t.Fatal("test setup: the dead host holds no targets, degradation would be unobservable")
	}

	res, err := CrawlSite(fed, Config{
		Strategy: StrategyBFS, Seed: 2, FaultDeadHosts: []string{dead},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("crawl with a dead host reported no fault stats")
	}
	if res.Faults.BreakerTrips == 0 {
		t.Error("breaker never tripped on the dead host")
	}
	if res.Faults.BreakerFastFails == 0 {
		t.Error("open breaker never fast-failed a request: the dead host kept burning retry budget")
	}
	found := false
	for _, h := range res.Faults.QuarantinedHosts {
		if strings.Contains(h, dead) {
			found = true
		}
	}
	if !found {
		t.Errorf("dead host missing from quarantine list: %v", res.Faults.QuarantinedHosts)
	}
	got := 0
	for _, u := range res.Targets {
		if strings.Contains(u, dead) {
			t.Errorf("impossible: target retrieved from the dead host: %s", u)
		} else {
			got++
		}
	}
	if got != liveTargets {
		t.Errorf("degraded crawl found %d of %d live-host targets: the dead host dragged the rest down", got, liveTargets)
	}
	// Bounded budget: after the trip, dead-host URLs fast-fail instead of
	// exhausting full retry loops, so exhaustions stay below the failures.
	if res.Faults.Exhausted >= res.Faults.FailedRequests {
		t.Errorf("every dead-host request burned its full retry budget (exhausted=%d, failed=%d): the breaker saved nothing",
			res.Faults.Exhausted, res.Faults.FailedRequests)
	}
}
