package sbcrawl

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"sbcrawl/internal/classify"
	"sbcrawl/internal/core"
	"sbcrawl/internal/faultsim"
	"sbcrawl/internal/fetch"
	"sbcrawl/internal/sitegen"
	"sbcrawl/internal/webserver"
)

// Site is a deterministic synthetic website mirroring one of the paper's 18
// evaluation websites (see SiteCodes). It can be crawled in memory through
// CrawlSite, or served over real HTTP via Handler. A Site is immutable
// after GenerateSite and safe to share between concurrent crawls.
type Site struct {
	site   *sitegen.Site
	server *webserver.Server
	// fed is set instead of site/server for a multi-host federation
	// (GenerateFederation): several member sites behind one portal.
	fed *webserver.Federation
	// Generation parameters, recorded so the persistent store can scope
	// its keys to this exact site: the same (code, scale, seed) triple
	// regenerates identical content, any other triple is a different site.
	code  string
	scale float64
	seed  int64
}

// SiteCodes lists the available site profiles (Table 1 of the paper):
// ab, as, be, ce, cl, cn, ed, il, in, is, jp, ju, nc, oe, ok, qa, wh, wo.
func SiteCodes() []string {
	out := make([]string, 0, len(sitegen.Profiles))
	for _, p := range sitegen.Profiles {
		out = append(out, p.Code)
	}
	return out
}

// GenerateSite builds the synthetic website for one of the paper's site
// codes. scale multiplies the real site's page count (e.g. 0.01 turns the
// 56k-page justice.gouv.fr profile into ~566 pages); seed fixes all
// randomness.
func GenerateSite(code string, scale float64, seed int64) (*Site, error) {
	profile, ok := sitegen.ProfileByCode(code)
	if !ok {
		return nil, fmt.Errorf("sbcrawl: unknown site code %q (see SiteCodes)", code)
	}
	site := sitegen.Generate(sitegen.Config{Profile: profile, Scale: scale, Seed: seed})
	return &Site{site: site, server: webserver.New(site), code: code, scale: scale, seed: seed}, nil
}

// GenerateFederation builds a multi-host website: one member site per code
// (each at scale, with per-member seeds derived from seed) mounted as
// subdomains of federation.test behind a portal page, with deterministic
// cross-host links between members. A federation is the natural workload
// for Config.Partitions — every host can be owned by a different fabric
// partition — and crawls exactly like a single Site (same determinism,
// store, and resume guarantees).
func GenerateFederation(codes []string, scale float64, seed int64) (*Site, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("sbcrawl: federation needs at least one site code")
	}
	members := make([]*sitegen.Site, 0, len(codes))
	for i, code := range codes {
		profile, ok := sitegen.ProfileByCode(code)
		if !ok {
			return nil, fmt.Errorf("sbcrawl: unknown site code %q (see SiteCodes)", code)
		}
		members = append(members, sitegen.Generate(sitegen.Config{
			Profile: profile, Scale: scale, Seed: seed + int64(i)*1000003,
		}))
	}
	fed := webserver.NewFederation("federation.test", members)
	return &Site{
		fed:  fed,
		code: "fed:" + strings.Join(codes, "+"), scale: scale, seed: seed,
	}, nil
}

// Root returns the site's start URL (a federation's portal).
func (s *Site) Root() string {
	if s.fed != nil {
		return s.fed.Root()
	}
	return s.site.Root()
}

// Code returns the site's profile code (a federation returns
// "fed:<code>+<code>+…").
func (s *Site) Code() string {
	if s.fed != nil {
		return s.code
	}
	return s.site.Profile.Code
}

// Name returns the mirrored organization's name.
func (s *Site) Name() string {
	if s.fed != nil {
		return s.fed.String()
	}
	return s.site.Profile.Name
}

// TargetCount returns the number of target files the site holds — the
// ground truth a crawl's recall is judged against.
func (s *Site) TargetCount() int {
	if s.fed != nil {
		return len(s.fed.TargetURLs())
	}
	return len(s.site.TargetURLs())
}

// PageCount returns the number of available (2xx) pages.
func (s *Site) PageCount() int {
	if s.fed != nil {
		return s.fed.PageCount()
	}
	st := s.site.ComputeStats()
	return st.Available
}

// Handler serves the site over HTTP, for crawling through the live network
// stack (see examples/live_http). Federations are in-memory only.
func (s *Site) Handler() http.Handler {
	if s.fed != nil {
		return http.NotFoundHandler()
	}
	return s.server.Handler()
}

// lookup resolves a URL against the site's ground truth, branching between
// the single-server and federation backends.
func (s *Site) lookup(u string) (*sitegen.Page, bool) {
	if s.fed != nil {
		return s.fed.Lookup(u)
	}
	return s.site.Lookup(u)
}

// targetURLs lists the ground-truth targets in crawlable form.
func (s *Site) targetURLs() []string {
	if s.fed != nil {
		return s.fed.TargetURLs()
	}
	return s.site.TargetURLs()
}

// CrawlSite runs any strategy against a simulated site, in memory, with all
// ground truth wired for the oracle strategies. cfg.Root is ignored.
func CrawlSite(site *Site, cfg Config) (*Result, error) {
	return CrawlSiteCtx(nil, site, cfg)
}

// CrawlSiteCtx is CrawlSite with a cancellation context: a cancelled ctx
// stops the crawl at its next request — interrupting simulated round-trip
// waits promptly — and returns the partial Result. With a store attached
// the interrupted prefix is durable and the same Config resumes
// deterministically. A nil ctx never cancels.
func CrawlSiteCtx(ctx context.Context, site *Site, cfg Config) (*Result, error) {
	return runCrawl(cfg, siteCrawlEnv(site, cfg, ctx), site.PageCount(), simNamespace(site))
}

// siteCrawlEnv wires a fresh crawl Env over a simulated site: its own
// fetcher (optionally latency-wrapped) plus the oracle hooks. Each call
// returns an independent Env, so any number may crawl the same Site
// concurrently. A non-nil ctx cancels the crawl and interrupts simulated
// round-trip waits promptly.
func siteCrawlEnv(site *Site, cfg Config, ctx context.Context) *core.Env {
	var backend fetch.SimBackend = site.server
	if site.fed != nil {
		backend = site.fed
	}
	// Server-side faults: a profile can carry its own fault schedule, making
	// the simulated site itself flaky independent of the Config.
	if site.fed == nil && site.site.Profile.Faults != nil {
		backend = webserver.NewFlaky(backend, faultsim.NewPlan(*site.site.Profile.Faults))
	}
	var fetcher fetch.Fetcher = fetch.NewSim(backend)
	// Transport-side faults: the Config's injected-fault schedule wraps the
	// fetcher, so resets/timeouts/503s appear below the retry layer.
	if plan := faultPlan(cfg); plan != nil {
		fetcher = fetch.NewFaultInjector(fetcher, plan)
	}
	if cfg.SimLatency > 0 {
		fetcher = &fetch.Latency{Backend: fetcher, Delay: cfg.SimLatency, Ctx: ctx}
	}
	retry, breaker := retryPolicies(cfg, false)
	return &core.Env{
		Root:         site.Root(),
		Fetcher:      fetcher,
		MaxRequests:  cfg.MaxRequests,
		Ctx:          ctx,
		Prefetch:     cfg.Prefetch,
		ParseWorkers: cfg.ParseWorkers,
		Retry:        retry,
		Breaker:      breaker,
		OracleClass: func(u string) int {
			pg, ok := site.lookup(u)
			if !ok {
				return classify.ClassNeither
			}
			switch pg.Kind {
			case sitegen.KindHTML:
				return classify.ClassHTML
			case sitegen.KindTarget:
				return classify.ClassTarget
			default:
				return classify.ClassNeither
			}
		},
		OracleBenefit: func(u string) int {
			pg, ok := site.lookup(u)
			if !ok {
				return 0
			}
			return len(pg.DatasetLinks)
		},
		OracleTargets: site.targetURLs(),
	}
}
