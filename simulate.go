package sbcrawl

import (
	"context"
	"fmt"
	"net/http"

	"sbcrawl/internal/classify"
	"sbcrawl/internal/core"
	"sbcrawl/internal/fetch"
	"sbcrawl/internal/sitegen"
	"sbcrawl/internal/webserver"
)

// Site is a deterministic synthetic website mirroring one of the paper's 18
// evaluation websites (see SiteCodes). It can be crawled in memory through
// CrawlSite, or served over real HTTP via Handler. A Site is immutable
// after GenerateSite and safe to share between concurrent crawls.
type Site struct {
	site   *sitegen.Site
	server *webserver.Server
	// Generation parameters, recorded so the persistent store can scope
	// its keys to this exact site: the same (code, scale, seed) triple
	// regenerates identical content, any other triple is a different site.
	code  string
	scale float64
	seed  int64
}

// SiteCodes lists the available site profiles (Table 1 of the paper):
// ab, as, be, ce, cl, cn, ed, il, in, is, jp, ju, nc, oe, ok, qa, wh, wo.
func SiteCodes() []string {
	out := make([]string, 0, len(sitegen.Profiles))
	for _, p := range sitegen.Profiles {
		out = append(out, p.Code)
	}
	return out
}

// GenerateSite builds the synthetic website for one of the paper's site
// codes. scale multiplies the real site's page count (e.g. 0.01 turns the
// 56k-page justice.gouv.fr profile into ~566 pages); seed fixes all
// randomness.
func GenerateSite(code string, scale float64, seed int64) (*Site, error) {
	profile, ok := sitegen.ProfileByCode(code)
	if !ok {
		return nil, fmt.Errorf("sbcrawl: unknown site code %q (see SiteCodes)", code)
	}
	site := sitegen.Generate(sitegen.Config{Profile: profile, Scale: scale, Seed: seed})
	return &Site{site: site, server: webserver.New(site), code: code, scale: scale, seed: seed}, nil
}

// Root returns the site's start URL.
func (s *Site) Root() string { return s.site.Root() }

// Code returns the site's profile code.
func (s *Site) Code() string { return s.site.Profile.Code }

// Name returns the mirrored organization's name.
func (s *Site) Name() string { return s.site.Profile.Name }

// TargetCount returns the number of target files the site holds — the
// ground truth a crawl's recall is judged against.
func (s *Site) TargetCount() int { return len(s.site.TargetURLs()) }

// PageCount returns the number of available (2xx) pages.
func (s *Site) PageCount() int {
	st := s.site.ComputeStats()
	return st.Available
}

// Handler serves the site over HTTP, for crawling through the live network
// stack (see examples/live_http).
func (s *Site) Handler() http.Handler { return s.server.Handler() }

// CrawlSite runs any strategy against a simulated site, in memory, with all
// ground truth wired for the oracle strategies. cfg.Root is ignored.
func CrawlSite(site *Site, cfg Config) (*Result, error) {
	return CrawlSiteCtx(nil, site, cfg)
}

// CrawlSiteCtx is CrawlSite with a cancellation context: a cancelled ctx
// stops the crawl at its next request — interrupting simulated round-trip
// waits promptly — and returns the partial Result. With a store attached
// the interrupted prefix is durable and the same Config resumes
// deterministically. A nil ctx never cancels.
func CrawlSiteCtx(ctx context.Context, site *Site, cfg Config) (*Result, error) {
	return runCrawl(cfg, siteCrawlEnv(site, cfg, ctx), site.PageCount(), simNamespace(site))
}

// siteCrawlEnv wires a fresh crawl Env over a simulated site: its own
// fetcher (optionally latency-wrapped) plus the oracle hooks. Each call
// returns an independent Env, so any number may crawl the same Site
// concurrently. A non-nil ctx cancels the crawl and interrupts simulated
// round-trip waits promptly.
func siteCrawlEnv(site *Site, cfg Config, ctx context.Context) *core.Env {
	var fetcher fetch.Fetcher = fetch.NewSim(site.server)
	if cfg.SimLatency > 0 {
		fetcher = &fetch.Latency{Backend: fetcher, Delay: cfg.SimLatency, Ctx: ctx}
	}
	return &core.Env{
		Root:         site.site.Root(),
		Fetcher:      fetcher,
		MaxRequests:  cfg.MaxRequests,
		Ctx:          ctx,
		Prefetch:     cfg.Prefetch,
		ParseWorkers: cfg.ParseWorkers,
		OracleClass: func(u string) int {
			pg, ok := site.site.Lookup(u)
			if !ok {
				return classify.ClassNeither
			}
			switch pg.Kind {
			case sitegen.KindHTML:
				return classify.ClassHTML
			case sitegen.KindTarget:
				return classify.ClassTarget
			default:
				return classify.ClassNeither
			}
		},
		OracleBenefit: func(u string) int {
			pg, ok := site.site.Lookup(u)
			if !ok {
				return 0
			}
			return len(pg.DatasetLinks)
		},
		OracleTargets: site.site.TargetURLs(),
	}
}
