#!/bin/sh
# Perf trajectory: run the full benchmark suite once and record the raw
# `go test -json` stream in BENCH_engine.json at the repo root. Every PR
# that touches a hot path should regenerate the file so regressions are
# visible in review; BENCH_store.json follows the same convention for the
# storage layer. Compare runs with `grep ns/op` or `benchstat` on the
# extracted Output lines.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_engine.json}
go test -run '^$' -bench . -benchtime 1x -json ./... > "$OUT"
echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
