#!/bin/sh
# Perf trajectory: run a benchmark suite once and record the raw
# `go test -json` stream in a BENCH_*.json file at the repo root. Every PR
# that touches a hot path should regenerate the file it affects so
# regressions are visible in review. One file per subsystem, same shape:
#
#   BENCH_engine.json     (default mode)    engine/parse/vectorize hot paths
#   BENCH_store.json      (store mode)      segment-log replay database
#   BENCH_serve.json      (serve mode)      crawld session multiplexing
#   BENCH_fabric.json     (fabric mode)     partitioned intra-crawl fabric
#   BENCH_resilience.json (resilience mode) retry layer under injected faults
#
# `scripts/bench.sh extract <any BENCH_*.json>` recovers the plain benchmark
# lines from the JSON stream in a benchstat-ready shape, and
# `scripts/bench.sh compare <old.json> <new.json>` diffs two streams in one
# command (benchstat when installed, plain diff otherwise):
#
#   scripts/bench.sh extract old/BENCH_fabric.json > old.txt
#   scripts/bench.sh extract BENCH_fabric.json     > new.txt
#   benchstat old.txt new.txt
#   # or, in one step:
#   scripts/bench.sh compare old/BENCH_fabric.json BENCH_fabric.json
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "extract" ]; then
	# Pull the benchmark Output events out of a `go test -json` stream and
	# unescape them back into `go test -bench` text (benchstat's format).
	# A result line is streamed as two events — the bench name, then the
	# measurements — so the payloads are concatenated before splitting on
	# the embedded newlines.
	IN=${2:-BENCH_engine.json}
	grep '"Action":"output"' "$IN" \
		| sed 's/.*"Output":"//; s/"}$//' \
		| tr -d '\n' \
		| sed 's/\\n/\n/g' \
		| sed 's/\\t/\t/g; s/\\"/"/g; s/\\\\/\\/g' \
		| grep '^Benchmark.*ns/op'
	exit 0
fi

if [ "${1:-}" = "compare" ]; then
	# Diff two recorded streams: extract both sides, then benchstat when
	# available (falls back to a plain diff, which still surfaces ns/op and
	# req/s movement line by line).
	OLD=${2:?usage: bench.sh compare <old.json> <new.json>}
	NEW=${3:?usage: bench.sh compare <old.json> <new.json>}
	TMP=$(mktemp -d)
	trap 'rm -rf "$TMP"' EXIT
	"$0" extract "$OLD" > "$TMP/old.txt"
	"$0" extract "$NEW" > "$TMP/new.txt"
	if command -v benchstat >/dev/null 2>&1; then
		benchstat "$TMP/old.txt" "$TMP/new.txt"
	else
		echo "benchstat not installed; falling back to diff" >&2
		diff "$TMP/old.txt" "$TMP/new.txt" || true
	fi
	exit 0
fi

if [ "${1:-}" = "fabric" ]; then
	# Partitioned-crawl trajectory: BenchmarkFabricPartitions crawls one
	# latency-bound 8-host federation at partitions 1/2/4/8, recording req/s
	# plus the exchange counters (forwarded URLs, stalls, max inbox depth)
	# and the demand hit/miss split in BENCH_fabric.json.
	OUT=${2:-BENCH_fabric.json}
	go test -run '^$' -bench BenchmarkFabricPartitions -benchtime 3x -json . > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

if [ "${1:-}" = "resilience" ]; then
	# Robustness trajectory: BenchmarkResilience crawls one medium site with
	# the retry/backoff layer armed at injected transient-fault rates
	# 0/1%/5%/20%, recording req/s plus the retry traffic split (retries,
	# recovered, exhausted, failed requests) in BENCH_resilience.json. The
	# crawl result is byte-identical at every rate (TestRetryConvergence);
	# this file records what that recovery costs.
	OUT=${2:-BENCH_resilience.json}
	go test -run '^$' -bench BenchmarkResilience -benchtime 3x -json . > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

if [ "${1:-}" = "serve" ]; then
	# Daemon trajectory: BenchmarkServeSessions drives >= 1k concurrent
	# sessions through the crawld HTTP API on one daemon, recording
	# sessions/s plus attach/step latency percentiles (p50/p95/p99) in
	# BENCH_serve.json.
	OUT=${2:-BENCH_serve.json}
	go test -run '^$' -bench BenchmarkServeSessions -benchtime 1x -json ./internal/serve > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

if [ "${1:-}" = "store" ] || [ "${1:-}" = "codec" ]; then
	# Storage-layer trajectory: the internal/store segment-log benchmarks
	# (replay-database round trip, group-commit batches, snapshot
	# compaction, resume overhead) plus the internal/codec rows (the
	# hand-written binary codec against the retained gob baseline),
	# recorded together in BENCH_store.json — the codec and the log are one
	# persistence plane. `codec` is an alias for the same recording.
	OUT=${2:-BENCH_store.json}
	go test -run '^$' -bench . -benchtime 1000x -json ./internal/store ./internal/codec > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

OUT=${1:-BENCH_engine.json}
go test -run '^$' -bench . -benchtime 1x -json ./... > "$OUT"
echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
