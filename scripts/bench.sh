#!/bin/sh
# Perf trajectory: run the full benchmark suite once and record the raw
# `go test -json` stream in BENCH_engine.json at the repo root. Every PR
# that touches a hot path should regenerate the file so regressions are
# visible in review; BENCH_store.json follows the same convention for the
# storage layer.
#
# Comparing BENCH files across PRs: `scripts/bench.sh extract <file>`
# recovers the plain benchmark lines from the JSON stream in a
# benchstat-ready shape, so two PRs diff with
#
#   scripts/bench.sh extract old/BENCH_engine.json > old.txt
#   scripts/bench.sh extract BENCH_engine.json     > new.txt
#   benchstat old.txt new.txt        # or: diff old.txt new.txt / grep ns/op
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "extract" ]; then
	# Pull the benchmark Output events out of a `go test -json` stream and
	# unescape them back into `go test -bench` text (benchstat's format).
	# A result line is streamed as two events — the bench name, then the
	# measurements — so the payloads are concatenated before splitting on
	# the embedded newlines.
	IN=${2:-BENCH_engine.json}
	grep '"Action":"output"' "$IN" \
		| sed 's/.*"Output":"//; s/"}$//' \
		| tr -d '\n' \
		| sed 's/\\n/\n/g' \
		| sed 's/\\t/\t/g; s/\\"/"/g; s/\\\\/\\/g' \
		| grep '^Benchmark.*ns/op'
	exit 0
fi

if [ "${1:-}" = "serve" ]; then
	# Daemon trajectory: BenchmarkServeSessions drives >= 1k concurrent
	# sessions through the crawld HTTP API on one daemon, recording
	# sessions/s plus attach/step latency percentiles (p50/p95/p99) in
	# BENCH_serve.json.
	OUT=${2:-BENCH_serve.json}
	go test -run '^$' -bench BenchmarkServeSessions -benchtime 1x -json ./internal/serve > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

if [ "${1:-}" = "store" ]; then
	# Storage-layer trajectory: the internal/store segment-log benchmarks
	# (replay-database round trip, snapshot compaction, resume overhead)
	# recorded in BENCH_store.json.
	OUT=${2:-BENCH_store.json}
	go test -run '^$' -bench . -benchtime 1000x -json ./internal/store > "$OUT"
	echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
	exit 0
fi

OUT=${1:-BENCH_engine.json}
go test -run '^$' -bench . -benchtime 1x -json ./... > "$OUT"
echo "wrote $OUT ($(grep -c '"Action"' "$OUT") events)" >&2
