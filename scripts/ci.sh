#!/bin/sh
# Tier-1 verification: build (library, cmd/, examples/), vet, tests, the
# race-detector pass, and the pipeline gates — the prefetch-equivalence
# suite under -race (the pipelined engine must never silently regress
# determinism) plus a benchmark smoke run (the bench suite must never
# silently stop building). Equivalent to `make ci`; kept as a script for
# environments without make.
set -eux

go build ./...
go vet ./...
go test ./...
# The race pass doubles as the pipeline determinism gate: it runs the
# TestPrefetch* equivalence suite (byte-identical results at every prefetch
# width) with the race detector watching the speculative fetch layer.
go test -race ./...
# Bench smoke: the perf-trajectory benchmarks still build and run — the
# pipeline widths, the fleet speedup, the adaptive speculation window, and
# the fleet-shared speculation cache.
go test -run '^$' -bench 'BenchmarkPrefetchPipeline|BenchmarkFleetParallel|BenchmarkAdaptivePrefetch|BenchmarkFleetSharedCache' -benchtime 1x .
# Storage-layer smoke: the segment-log benchmarks behind BENCH_store.json
# (round trip, snapshot compaction, resume/index-rebuild overhead) still
# build and run.
go test -run '^$' -bench 'BenchmarkStoreRoundTrip|BenchmarkStoreSnapshot|BenchmarkResumeOverhead' -benchtime 1x ./internal/store
# Resume determinism gate, explicitly under -race: kill-at-step-k then
# resume over the persistent store must stay byte-identical to an
# uninterrupted run for every strategy and prefetch width.
go test -race -run 'TestResumeEquivalence' -count=1 .
