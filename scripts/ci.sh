#!/bin/sh
# Tier-1 verification: build (library, cmd/, examples/), vet, tests, the
# race-detector pass, and the pipeline gates — the prefetch-equivalence
# suite under -race (the pipelined engine must never silently regress
# determinism) plus a benchmark smoke run (the bench suite must never
# silently stop building). Equivalent to `make ci`; kept as a script for
# environments without make.
set -eux

go build ./...
go vet ./...
# Gob-free hot path: encoding/gob survives only as the legacy-decode
# fallback (one legacy_gob.go per package) and as the benchmark baseline in
# test files. Any other import is a regression to the reflection codec.
if grep -rn --include='*.go' '"encoding/gob"' . \
	| grep -v '_test.go' | grep -v 'legacy_gob.go' | grep -v '^./testdata/'; then
	echo "encoding/gob imported outside legacy_gob.go fallbacks" >&2
	exit 1
fi
go test ./...
# The race pass doubles as the pipeline determinism gate: it runs the
# TestPrefetch* equivalence suite (byte-identical results at every prefetch
# width) with the race detector watching the speculative fetch layer.
go test -race ./...
# Bench smoke: the perf-trajectory benchmarks still build and run — the
# pipeline widths, the fleet speedup, the adaptive speculation window, the
# fleet-shared speculation cache, and the parallel parse stage.
go test -run '^$' -bench 'BenchmarkPrefetchPipeline|BenchmarkFleetParallel|BenchmarkAdaptivePrefetch|BenchmarkFleetSharedCache|BenchmarkParseStagePipeline' -benchtime 1x .
# Zero-allocation hot-path gate: the pooled parse/extract scanners and the
# reusable vectorizer hasher must keep their steady-state allocation
# budgets (O(links) per page, never O(bytes); one output vector per
# Vectorize), and the raw-text scan must stay copy-free.
go test -run 'Alloc' -count=1 ./internal/dom ./internal/textvec
# Codec allocation gate: the replay-record round trip — AppendResponse into
# a reused buffer, DecodeResponseInto filling a reused struct with views —
# and the checkpoint re-encode must allocate nothing in steady state.
go test -run 'Alloc' -count=1 ./internal/codec
# Fuzz seed-corpus gate: the tokenizer/extractor fuzz targets run their
# checked-in seeds as ordinary tests (termination, Next/NextRaw agreement,
# UTF-8 preservation, pool hygiene).
go test -run 'Fuzz' -count=1 ./internal/dom
# Codec/store fuzz seeds: every persistence-plane decoder survives
# arbitrary bytes (accepted blobs must re-encode to identity), the segment
# scanner never panics and reports mutated logs through Recovery(), and the
# session-record decoder does the same for the daemon.
go test -run 'Fuzz' -count=1 ./internal/codec ./internal/store ./internal/serve
# Real fuzzing, time-boxed: running only the checked-in seeds does not
# actually enforce the never-panic invariant (corrupt-length overflow
# panics sailed through the seed-only gate and fell to a real -fuzz run in
# seconds), so each persistence-plane target gets a short live pass.
# Mutated crashers land in testdata/fuzz/ and fail the build.
go test -run '^$' -fuzz '^FuzzCodec$' -fuzztime 30s ./internal/codec
go test -run '^$' -fuzz '^FuzzDelta$' -fuzztime 10s ./internal/codec
go test -run '^$' -fuzz '^FuzzScanSegment$' -fuzztime 10s ./internal/store
go test -run '^$' -fuzz '^FuzzSessionRecord$' -fuzztime 10s ./internal/serve
# Storage-layer smoke: the segment-log benchmarks behind BENCH_store.json
# (round trip, snapshot compaction, resume/index-rebuild overhead) still
# build and run.
go test -run '^$' -bench 'BenchmarkStoreRoundTrip|BenchmarkStoreSnapshot|BenchmarkStorePutBatch|BenchmarkResumeOverhead' -benchtime 1x ./internal/store
# Codec-vs-gob smoke: the round-trip benchmark behind the ≥3x/≥10x
# acceptance numbers still builds and runs.
go test -run '^$' -bench 'BenchmarkCodecRoundTrip' -benchtime 1x ./internal/codec
# Fabric smoke: the partitioned-crawl benchmark behind BENCH_fabric.json
# still builds and runs.
go test -run '^$' -bench 'BenchmarkFabricPartitions' -benchtime 1x .
# Fabric determinism gate, explicitly under -race: partitioned crawls must
# stay byte-identical to unpartitioned ones — including across a hard kill
# and resume — while the detector watches the exchange and the shared
# response cache.
go test -race -run 'TestFabricEquivalence|TestFabricResumeEquivalence' -count=1 .
# Resume determinism gate, explicitly under -race: kill-at-step-k then
# resume over the persistent store must stay byte-identical to an
# uninterrupted run for every strategy and prefetch width.
go test -race -run 'TestResumeEquivalence' -count=1 .
# Cross-version gate, under -race: the checked-in gob-era golden stores
# resume byte-identically through the legacy-decode fallback, records from
# a future format version are refused with the typed error, and the
# delta-encoded checkpoint chain resolves to the newest checkpoint.
go test -race -run 'TestGobStore|TestCodecStoreRefuses|TestDeltaCheckpoints' -count=1 .
# Daemon smoke, explicitly under -race: the crawld session lifecycle, the
# kill-the-daemon resume equivalence, and multi-tenant fairness — the serve
# layer multiplexes sessions over shared state, so race-clean is a hard
# requirement there too.
go test -race -run 'TestSessionLifecycle|TestServeResumeEquivalence|TestServeNoStarvation|TestSchedulerFairness' -count=1 ./internal/serve
# Robustness gates, explicitly under -race: crawls under seeded injected
# faults with the retry/backoff/breaker layer on must converge to the
# byte-identical fault-free Result (all strategies, sequential and
# partitioned), kill+resume under faults must stay deterministic, and a
# dead host must degrade gracefully (quarantined at bounded cost while the
# rest of the federation completes).
go test -race -run 'TestRetryConvergence|TestFaultResumeEquivalence|TestFaultedStoreNeverSatisfiesFaultFreeResume|TestBreakerDegradesGracefully' -count=1 .
# Fault-layer unit suite, also under -race: the error taxonomy, the
# deterministic retrier, the circuit breaker, the replay-never-records-
# transients invariant, and the Registry/HostLimiter fault storm.
go test -race -run 'TestClassify|TestSynthetic|TestStatusPredicates|TestRetrier|TestReplayNeverRecordsTransient|TestBreaker|TestRegistryHostLimiterFaultStorm' -count=1 ./internal/fetch
# Resilience-bench smoke: the workload behind BENCH_resilience.json still
# builds and runs.
go test -run '^$' -bench 'BenchmarkResilience' -benchtime 1x .
