module sbcrawl

go 1.24
